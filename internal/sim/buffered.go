package sim

import (
	"fmt"

	"fattree/internal/core"
	"fattree/internal/obsv"
	"fattree/internal/par"
)

// This file implements a buffered delivery model — the road not taken in the
// paper ("presumably, fat-tree architectures can be built with different
// design decisions", Section VII) and the one modern fat-tree networks
// actually use: instead of dropping congested messages and retrying whole
// delivery cycles, each node holds small FIFO queues per output channel and
// applies backpressure. Time advances in synchronous hops; each channel c
// forwards up to cap(c) queued messages per hop. The up/down channel
// dependency graph of a tree is acyclic, so backpressure cannot deadlock.
// Experiment E19 compares this model against the paper's drop-retry cycles.

// BufferedStats summarizes a buffered delivery run.
type BufferedStats struct {
	// Hops is the number of synchronous switch cycles until the last message
	// arrived.
	Hops int
	// Delivered counts messages that reached their destination.
	Delivered int
	// MaxQueue is the peak occupancy observed in any channel queue.
	MaxQueue int
	// MeanLatency and MaxLatency describe per-message delivery times (hops
	// from injection at time zero).
	MeanLatency float64
	MaxLatency  int
	// Stalls counts hop-message events where a message could not advance
	// because the next queue was full (backpressure).
	Stalls int
}

// bufferedLimit bounds the simulation against bugs; a correct run always
// terminates far earlier.
const bufferedLimit = 1 << 22

// RunBuffered delivers ms on t with per-channel FIFO queues of the given
// depth (measured in messages; the paper's wire-parallel channels forward
// cap(c) messages per hop). queueDepth must be at least 1. Source processors
// buffer their own backlog without limit, as in Section II.
func RunBuffered(t *core.FatTree, ms core.MessageSet, queueDepth int) BufferedStats {
	return runBuffered(t, ms, queueDepth, nil)
}

// RunBufferedObserved is RunBuffered with the observability layer attached:
// the observer's per-channel Stalls and QueuePeak counters record where
// backpressure bites and how deep the FIFO queues actually get (channel index
// 2·node+dir, the buffered model's own layout). The stats returned are
// identical to RunBuffered's.
func RunBufferedObserved(t *core.FatTree, ms core.MessageSet, queueDepth int, o *obsv.Observer) BufferedStats {
	return runBuffered(t, ms, queueDepth, o)
}

// runBuffered is the shared implementation; o may be nil.
func runBuffered(t *core.FatTree, ms core.MessageSet, queueDepth int, o *obsv.Observer) BufferedStats {
	if queueDepth < 1 {
		panic(fmt.Sprintf("sim: queue depth %d must be >= 1", queueDepth))
	}
	if err := ms.Validate(t); err != nil {
		panic(err)
	}
	for _, m := range ms {
		if m.IsExternal() {
			panic("sim: RunBuffered does not model the external interface; use the cycle engine")
		}
	}
	var stats BufferedStats
	if len(ms) == 0 {
		return stats
	}

	// Channel index: up = 2*node, down = 2*node+1, for heap nodes 1..2n-1.
	n2 := 4 * t.Processors()
	chanUp := func(v int) int { return 2 * v }

	// Precompute every message's channel path once (fanned out over the
	// worker pool — paths are independent and FatTree reads are pure) so the
	// per-hop loop below is pure table lookups instead of LCA recomputation.
	// paths[i] is message i's channel-index sequence; at[i] is the position
	// message i currently occupies (-1 while still queued at its source).
	paths := make([][]int, len(ms))
	par.New(0).ForEach(len(ms), func(i int) {
		chs := t.Path(ms[i], nil)
		p := make([]int, len(chs))
		for j, c := range chs {
			p[j] = 2*c.Node + int(c.Dir)
		}
		paths[i] = p
	})
	at := make([]int, len(ms))
	for i := range at {
		at[i] = -1
	}

	// next returns the channel after msg's current one, or -1 when it holds
	// the final (destination leaf, Down) channel.
	next := func(msg int) int {
		if at[msg]+1 >= len(paths[msg]) {
			return -1
		}
		return paths[msg][at[msg]+1]
	}

	queues := make([][]int, n2) // per channel: FIFO of message indices
	// Per-leaf source backlogs, indexed by heap node id. A slice rather
	// than a map keeps the injection sweep below in fixed leaf order —
	// map iteration order would vary run to run (see internal/lint,
	// nondeterm analyzer).
	sourceQ := make([][]int, 2*t.Processors())
	for i, m := range ms {
		leaf := t.Leaf(m.Src)
		sourceQ[leaf] = append(sourceQ[leaf], i)
	}
	latency := make([]int, len(ms))
	remaining := len(ms)

	// Deterministic channel order: by index.
	for hop := 1; remaining > 0; hop++ {
		if hop > bufferedLimit {
			panic("sim: buffered delivery exceeded the hop limit (deadlock bug?)")
		}
		// Phase 1: decide moves using start-of-hop occupancies.
		startLen := make([]int, n2)
		for c := range queues {
			startLen[c] = len(queues[c])
		}
		type move struct {
			msg  int
			from int // -1 = source queue
			to   int // -1 = delivered
		}
		var moves []move
		room := make([]int, n2)
		for c := range room {
			room[c] = queueDepth - startLen[c]
		}

		// Channel forwarding: head-of-line messages advance while capacity
		// and downstream room last.
		for c := 0; c < n2; c++ {
			q := queues[c]
			if len(q) == 0 {
				continue
			}
			cap := t.Capacity(core.Channel{Node: c / 2, Dir: core.Direction(c % 2)})
			sent := 0
			for _, msg := range q {
				if sent == cap {
					break
				}
				to := next(msg)
				if to != -1 {
					if room[to] <= 0 {
						stats.Stalls++
						if o != nil {
							o.Stall(to)
						}
						break // FIFO head-of-line blocking
					}
					room[to]--
				}
				moves = append(moves, move{msg: msg, from: c, to: to})
				sent++
			}
		}
		// Injection: sources push into their leaf's up channel queue, in
		// ascending leaf order.
		for leaf := t.Processors(); leaf < 2*t.Processors(); leaf++ {
			q := sourceQ[leaf]
			if len(q) == 0 {
				continue
			}
			capLeaf := t.Capacity(core.Channel{Node: leaf, Dir: core.Up})
			c := chanUp(leaf)
			sent := 0
			for _, msg := range q {
				if sent == capLeaf {
					break
				}
				if room[c] <= 0 {
					stats.Stalls++ // backpressure reached the source
					if o != nil {
						o.Stall(c)
					}
					break
				}
				room[c]--
				moves = append(moves, move{msg: msg, from: -1, to: c})
				sent++
			}
		}

		// Phase 2: apply.
		departed := make([]int, n2) // per channel: count removed from head
		for _, mv := range moves {
			at[mv.msg]++
			if mv.from >= 0 {
				departed[mv.from]++
			} else {
				leaf := t.Leaf(ms[mv.msg].Src)
				sourceQ[leaf] = sourceQ[leaf][1:]
			}
			if mv.to == -1 {
				latency[mv.msg] = hop
				remaining--
				stats.Delivered++
				continue
			}
			queues[mv.to] = append(queues[mv.to], mv.msg)
		}
		for c, k := range departed {
			if k > 0 {
				queues[c] = queues[c][k:]
			}
		}
		for c := range queues {
			if len(queues[c]) > stats.MaxQueue {
				stats.MaxQueue = len(queues[c])
			}
			if o != nil {
				o.Queue(c, len(queues[c]))
			}
		}
		stats.Hops = hop
	}

	total := 0
	for _, l := range latency {
		total += l
		if l > stats.MaxLatency {
			stats.MaxLatency = l
		}
	}
	stats.MeanLatency = float64(total) / float64(len(ms))
	return stats
}
