package sim

import (
	"fattree/internal/core"
	"fattree/internal/obsv"
)

// This file is the engine side of the observability layer (internal/obsv).
// The engine holds the observer as a concrete *obsv.Observer pointer — never
// an interface — so the disabled path is one pointer compare with no
// interface-conversion allocation, and every hook sits at a deterministic
// serial merge point of the cycle data plane:
//
//   - after inject, reading the flight table in message-index order;
//   - in routeLevel, after the level fan-out has joined but before the
//     buckets are reset, reading buckets in first-touch node order and each
//     bucket in message-index order;
//   - after collect, closing the cycle.
//
// Worker goroutines never touch the observer, so counter totals and the event
// stream are bit-identical for any worker count, and attaching an observer
// cannot perturb routing (it only reads engine state).

// SetObserver attaches an observer to the engine (nil detaches). The observer
// must be bound to a tree of the same size: a dense observer (obsv.New) for
// the dense engine, dense or compact (obsv.NewCompact) for the streaming
// engine — only streaming keeps every counter answerable without per-node
// arrays. Attaching snapshots the cumulative hardware counters of every switch
// so per-sweep deltas start at the attach point. The observer must not be
// shared with another engine running concurrently.
func (e *Engine) SetObserver(o *obsv.Observer) {
	if o != nil {
		if o.Nodes() != e.tree.Nodes()+1 {
			panic("sim: observer is bound to a tree of a different size")
		}
		switch {
		case e.stream != nil:
			e.stream.primeSpecials()
		case e.kary != nil:
			// The k-ary plane routes with inline ideal concentrators — there
			// are no switch objects to prime, and its counters stay per node.
			if o.Compact() {
				panic("sim: the k-ary engine requires a dense observer (obsv.New); compact observers attach to implicit-topology engines")
			}
		default:
			if o.Compact() {
				panic("sim: the dense engine requires a dense observer (obsv.New); compact observers attach to implicit-topology engines")
			}
			for v := 1; v < e.tree.Processors(); v++ {
				o.PrimeSwitch(v, e.switches[v].MatchingRounds(), e.switches[v].FaultDrops())
			}
		}
	}
	e.obs = o
}

// Observer returns the attached observer, or nil when observability is
// disabled.
func (e *Engine) Observer() *obsv.Observer { return e.obs }

// observeInject records the cycle start and the injection outcome of every
// flight in message-index order. Called only when an observer is attached.
//
//ftlint:hotpath
func (e *Engine) observeInject(pending core.MessageSet, flights []flight) {
	o := e.obs
	t := e.tree
	o.CycleStart(len(pending))
	for i := range flights {
		f := &flights[i]
		if f.state == flightLost { // deferred: never entered the network
			node := 1
			if f.msg.Src != core.External {
				node = t.Leaf(f.msg.Src)
			}
			o.Defer(i, f.msg, node)
			continue
		}
		o.Inject(i, f.msg, f.node, f.wire)
	}
}

// observeLevel records one sweep step's outcomes after the level fan-out has
// joined: per-switch contention (with the cumulative hardware counters for
// matching rounds and fault drops), and per-flight advance/block/deliver
// events with the channel each winner occupies. Bucket order is first-touch
// node order and within a bucket message-index order — the same deterministic
// order the drop merge uses. Called only when an observer is attached.
//
//ftlint:hotpath
func (e *Engine) observeLevel(first int, upSweep bool) {
	o := e.obs
	scr := &e.scr
	for _, v := range scr.nodes {
		bucket := scr.buckets[v-first]
		if e.kary != nil {
			// Inline ideal routing has no hardware counters to difference.
			o.SwitchDelta(v, len(bucket), scr.dropped[v-first], 0, 0)
		} else {
			sw := e.switches[v]
			o.Switch(v, len(bucket), scr.dropped[v-first], sw.MatchingRounds(), sw.FaultDrops())
		}
		for _, i := range bucket {
			f := &scr.flights[i]
			switch f.state {
			case flightLost:
				o.Block(i, f.msg, v)
			case flightUp:
				// Ascended: now holds a wire in the up channel above v.
				o.Advance(i, f.msg, v, v, int(core.Up), f.wire)
			case flightDown:
				// Turned or descended: holds the down channel above f.node.
				o.Advance(i, f.msg, v, f.node, int(core.Down), f.wire)
			case flightDone:
				if upSweep {
					// External output: delivered through the root up channel.
					o.Advance(i, f.msg, v, v, int(core.Up), f.wire)
				} else {
					// Reached the destination leaf's down channel.
					o.Advance(i, f.msg, v, f.node, int(core.Down), f.wire)
				}
				o.Deliver(i, f.msg, v)
			}
		}
	}
}
