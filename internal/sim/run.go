package sim

import (
	"fmt"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/sched"
)

// Stats summarizes a complete delivery of a message set.
type Stats struct {
	// Cycles is the number of delivery cycles used.
	Cycles int
	// Delivered is the number of messages delivered (always len(ms) unless
	// the cycle limit was hit).
	Delivered int
	// Drops is the total number of drop events at concentrators across all
	// cycles (one message may be dropped several times before succeeding).
	Drops int
	// Deferrals counts injection deferrals (source leaf channel full).
	Deferrals int
	// PerCycle is the number of messages delivered in each cycle.
	PerCycle []int
}

// maxCyclesDefault bounds retry loops against pathological livelock with
// partial concentrators.
const maxCyclesDefault = 100000

// RunOnline delivers ms with the greedy online protocol of Section II: every
// cycle, all undelivered messages are offered to the network; losers are
// negatively acknowledged and retried. It returns the delivery statistics.
// With ideal concentrators progress is guaranteed (the first pending message
// always survives every switch); with partial concentrators a generous cycle
// bound guards the loop and Delivered < len(ms) reports a stall. Engines
// with more than one worker route each cycle on the parallel path, with
// identical results.
func RunOnline(e *Engine, ms core.MessageSet) Stats {
	return e.runLoop(ms, e.runCycleAuto)
}

// RunSchedule plays a precomputed off-line schedule through the engine: cycle
// i injects exactly the schedule's i-th one-cycle message set (plus any
// earlier losses, which only occur with partial concentrators). With ideal
// concentrators a valid schedule incurs zero drops and zero deferrals — the
// hardware realizes Theorem 1 exactly. Engines with more than one worker
// route each cycle on the parallel path, with identical results.
func RunSchedule(e *Engine, s *sched.Schedule) Stats {
	if s.Tree != e.tree {
		panic(fmt.Sprintf("sim: schedule built for a different tree (%v vs %v)", s.Tree, e.tree))
	}
	return e.runCyclesLoop(s.Cycles, e.runCycleAuto)
}

// DeliverOffline is the headline convenience API: schedule ms with Theorem 1
// and play the schedule through ideal-switch hardware. The returned stats
// satisfy Cycles = len(schedule) and Drops = 0 for any valid input.
func DeliverOffline(t core.Topology, ms core.MessageSet) (Stats, *sched.Schedule) {
	s := sched.OffLine(t, ms)
	e := New(t, concentrator.KindIdeal, 0)
	return RunSchedule(e, s), s
}
