package sim

import (
	"fmt"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/sched"
)

// Stats summarizes a complete delivery of a message set.
type Stats struct {
	// Cycles is the number of delivery cycles used.
	Cycles int
	// Delivered is the number of messages delivered (always len(ms) unless
	// the cycle limit was hit).
	Delivered int
	// Drops is the total number of drop events at concentrators across all
	// cycles (one message may be dropped several times before succeeding).
	Drops int
	// Deferrals counts injection deferrals (source leaf channel full).
	Deferrals int
	// PerCycle is the number of messages delivered in each cycle.
	PerCycle []int
}

// maxCyclesDefault bounds retry loops against pathological livelock with
// partial concentrators.
const maxCyclesDefault = 100000

// RunOnline delivers ms with the greedy online protocol of Section II: every
// cycle, all undelivered messages are offered to the network; losers are
// negatively acknowledged and retried. It returns the delivery statistics.
// With ideal concentrators progress is guaranteed (the first pending message
// always survives every switch); with partial concentrators a generous cycle
// bound guards the loop and Delivered < len(ms) reports a stall.
func RunOnline(e *Engine, ms core.MessageSet) Stats {
	if err := ms.Validate(e.tree); err != nil {
		panic(err)
	}
	var stats Stats
	pending := ms.Clone()
	for len(pending) > 0 && stats.Cycles < maxCyclesDefault {
		delivered, res := e.RunCycle(pending)
		stats.Cycles++
		stats.Delivered += res.Delivered
		stats.Drops += res.Dropped
		stats.Deferrals += res.Deferred
		stats.PerCycle = append(stats.PerCycle, res.Delivered)
		var next core.MessageSet
		for i, ok := range delivered {
			if !ok {
				next = append(next, pending[i])
			}
		}
		if res.Delivered == 0 && len(next) == len(pending) {
			// No progress: with partial concentrators an unlucky matching can
			// stall identical retries forever; report and stop.
			return stats
		}
		pending = next
	}
	return stats
}

// RunSchedule plays a precomputed off-line schedule through the engine: cycle
// i injects exactly the schedule's i-th one-cycle message set (plus any
// earlier losses, which only occur with partial concentrators). With ideal
// concentrators a valid schedule incurs zero drops and zero deferrals — the
// hardware realizes Theorem 1 exactly.
func RunSchedule(e *Engine, s *sched.Schedule) Stats {
	if s.Tree != e.tree {
		panic(fmt.Sprintf("sim: schedule built for a different tree (%v vs %v)", s.Tree, e.tree))
	}
	var stats Stats
	var carry core.MessageSet
	for _, cyc := range s.Cycles {
		pending := core.Concat(carry, cyc)
		delivered, res := e.RunCycle(pending)
		stats.Cycles++
		stats.Delivered += res.Delivered
		stats.Drops += res.Dropped
		stats.Deferrals += res.Deferred
		stats.PerCycle = append(stats.PerCycle, res.Delivered)
		carry = nil
		for i, ok := range delivered {
			if !ok {
				carry = append(carry, pending[i])
			}
		}
	}
	// Drain losses (partial concentrators only).
	for len(carry) > 0 && stats.Cycles < maxCyclesDefault {
		delivered, res := e.RunCycle(carry)
		stats.Cycles++
		stats.Delivered += res.Delivered
		stats.Drops += res.Dropped
		stats.Deferrals += res.Deferred
		stats.PerCycle = append(stats.PerCycle, res.Delivered)
		var next core.MessageSet
		for i, ok := range delivered {
			if !ok {
				next = append(next, carry[i])
			}
		}
		if res.Delivered == 0 && len(next) == len(carry) {
			return stats
		}
		carry = next
	}
	return stats
}

// DeliverOffline is the headline convenience API: schedule ms with Theorem 1
// and play the schedule through ideal-switch hardware. The returned stats
// satisfy Cycles = len(schedule) and Drops = 0 for any valid input.
func DeliverOffline(t *core.FatTree, ms core.MessageSet) (Stats, *sched.Schedule) {
	s := sched.OffLine(t, ms)
	e := New(t, concentrator.KindIdeal, 0)
	return RunSchedule(e, s), s
}
