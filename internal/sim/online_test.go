package sim

import (
	"testing"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/workload"
)

func TestRunOnlineRandomDeliversEverything(t *testing.T) {
	for _, tree := range []*core.FatTree{
		core.NewConstant(32, 1),
		core.NewUniversal(64, 16),
	} {
		e := New(tree, concentrator.KindIdeal, 0)
		ms := workload.Random(tree.Processors(), 5*tree.Processors(), 3)
		stats := RunOnlineRandom(e, ms, 9)
		if stats.Delivered != len(ms) {
			t.Fatalf("%v: delivered %d of %d", tree, stats.Delivered, len(ms))
		}
	}
}

func TestRunOnlineRandomWithinEnvelope(t *testing.T) {
	// The Greenberg–Leiserson claim: O(λ + lg n·lg lg n) cycles w.h.p. We
	// check the envelope with a generous constant on several workloads.
	n := 128
	ft := core.NewUniversal(n, 32)
	e := New(ft, concentrator.KindIdeal, 0)
	for name, ms := range map[string]core.MessageSet{
		"perm":   workload.RandomPermutation(n, 1),
		"random": workload.Random(n, 8*n, 2),
		"bitrev": workload.BitReversal(n),
	} {
		lam := core.LoadFactor(ft, ms)
		stats := RunOnlineRandom(e, ms, 7)
		if stats.Delivered != len(ms) {
			t.Fatalf("%s: incomplete", name)
		}
		bound := OnlineBound(ft, lam, 6)
		if float64(stats.Cycles) > bound {
			t.Errorf("%s: %d cycles exceeds envelope %.1f (λ=%.1f)", name, stats.Cycles, bound, lam)
		}
		if float64(stats.Cycles) < lam {
			t.Errorf("%s: %d cycles beats λ=%.1f — impossible", name, stats.Cycles, lam)
		}
	}
}

func TestRunOnlineRandomNoStarvationUnderHotSpot(t *testing.T) {
	// All messages to one destination: the leaf channel admits a bounded
	// number per cycle, and random priorities ensure everyone eventually
	// wins. Cycles should be close to λ (the destination channel's queue).
	n := 64
	ft := core.NewConstant(n, 2)
	e := New(ft, concentrator.KindIdeal, 0)
	ms := workload.HotSpot(n, 50, 4)
	lam := core.LoadFactor(ft, ms)
	stats := RunOnlineRandom(e, ms, 11)
	if stats.Delivered != len(ms) {
		t.Fatalf("hot-spot starved: %+v", stats)
	}
	if float64(stats.Cycles) > 2*lam+4 {
		t.Errorf("hot-spot took %d cycles for λ=%.0f", stats.Cycles, lam)
	}
}

func TestRunOnlineRandomReproducible(t *testing.T) {
	ft := core.NewUniversal(64, 16)
	ms := workload.Random(64, 200, 5)
	a := RunOnlineRandom(New(ft, concentrator.KindIdeal, 0), ms, 42)
	b := RunOnlineRandom(New(ft, concentrator.KindIdeal, 0), ms, 42)
	if a.Cycles != b.Cycles || a.Drops != b.Drops {
		t.Errorf("same seed, different outcome: %+v vs %+v", a, b)
	}
}

func TestOnlineBound(t *testing.T) {
	ft := core.NewConstant(1024, 1)
	// lg n = 10, lg lg n ≈ 3.32: envelope at c=1, λ=0 is ~33.2.
	b := OnlineBound(ft, 0, 1)
	if b < 30 || b > 36 {
		t.Errorf("envelope %v out of expected range", b)
	}
	if OnlineBound(ft, 100, 1) <= b {
		t.Errorf("envelope must grow with λ")
	}
}
