package sim

import (
	"runtime"
	"testing"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/obsv"
	"fattree/internal/workload"
)

// TestLatencyHistogram pins the latency accounting on every retry-loop path:
// the histogram records exactly one observation per delivered message, every
// latency is at least 1 cycle (delivered the cycle it was first offered) and
// at most the run's cycle count, and a congestion-free permutation on ideal
// switches delivers everything in one cycle (all latencies exactly 1).
func TestLatencyHistogram(t *testing.T) {
	n := 32
	ft := core.NewUniversal(n, 8)

	t.Run("pairs-ideal-one-cycle", func(t *testing.T) {
		// Leaf-pair exchanges never contend (each bottom switch routes one
		// message), so the whole set delivers in one cycle and every latency
		// is exactly 1.
		ms := make(core.MessageSet, 0, n/2)
		for i := 0; i < n; i += 2 {
			ms = append(ms, core.Message{Src: i, Dst: i + 1})
		}
		o := obsv.New(ft)
		e := NewWithOptions(ft, concentrator.KindIdeal, 1, Options{Workers: 1, Observer: o})
		stats := e.Run(ms)
		if stats.Cycles != 1 || stats.Delivered != n/2 {
			t.Fatalf("pair exchange not one-cycle: %+v", stats)
		}
		s := o.Snapshot()
		if s.Latency.Count != int64(stats.Delivered) {
			t.Fatalf("latency count %d != delivered %d", s.Latency.Count, stats.Delivered)
		}
		if s.Latency.Sum != s.Latency.Count {
			t.Fatalf("congestion-free run: latency sum %d != count %d (want all 1s)",
				s.Latency.Sum, s.Latency.Count)
		}
	})

	t.Run("random-lossy-retry", func(t *testing.T) {
		o := obsv.New(ft)
		e := NewWithOptions(ft, concentrator.KindPartial, 5, Options{Workers: 2, Observer: o})
		e.InjectLoss(0.05, 7)
		stats := e.RunParallel(workload.Random(n, 4*n, 9))
		s := o.Snapshot()
		if s.Latency.Count != int64(stats.Delivered) {
			t.Fatalf("latency count %d != delivered %d", s.Latency.Count, stats.Delivered)
		}
		if s.Latency.Sum < s.Latency.Count {
			t.Fatalf("latency sum %d < count %d: some latency below 1", s.Latency.Sum, s.Latency.Count)
		}
		if max := int64(stats.Cycles) * s.Latency.Count; s.Latency.Sum > max {
			t.Fatalf("latency sum %d exceeds cycles×count %d", s.Latency.Sum, max)
		}
		if stats.Cycles > 1 && s.Latency.Sum == s.Latency.Count {
			t.Fatal("multi-cycle lossy run recorded no retried delivery latencies")
		}
	})

	t.Run("cycle-sequence", func(t *testing.T) {
		o := obsv.New(ft)
		e := NewWithOptions(ft, concentrator.KindPartial, 5, Options{Workers: 1, Observer: o})
		ms := workload.Random(n, 3*n, 13)
		stats := e.RunCycles([]core.MessageSet{ms[:n], ms[n : 2*n], ms[2*n:]})
		s := o.Snapshot()
		if s.Latency.Count != int64(stats.Delivered) {
			t.Fatalf("latency count %d != delivered %d", s.Latency.Count, stats.Delivered)
		}
	})

	t.Run("online-random", func(t *testing.T) {
		o := obsv.New(ft)
		e := NewWithOptions(ft, concentrator.KindIdeal, 5, Options{Workers: 0, Observer: o})
		stats := RunOnlineRandom(e, workload.Random(n, 4*n, 21), 23)
		s := o.Snapshot()
		if s.Latency.Count != int64(stats.Delivered) {
			t.Fatalf("latency count %d != delivered %d", s.Latency.Count, stats.Delivered)
		}
	})
}

// TestParallelHistogramsEqual extends the cross-worker determinism contract
// to the histogram layer: latency, match-round, queue-depth, and per-level
// utilization bucket arrays are bit-identical for workers {1, 2, GOMAXPROCS}
// (CountersEqual compares them), and non-vacuously so — the workload is
// congested and lossy enough that the latency and match-round histograms are
// populated with multi-cycle deliveries.
func TestParallelHistogramsEqual(t *testing.T) {
	n := 32
	ft := core.NewUniversal(n, 4)
	ms := workload.Random(n, 4*n, 11)
	run := func(w int) *obsv.Observer {
		o := obsv.New(ft)
		e := NewWithOptions(ft, concentrator.KindPartial, 9, Options{Workers: w, Observer: o})
		e.InjectLoss(0.03, 13)
		e.RunParallel(ms)
		return o
	}
	ref := run(1)
	s := ref.Snapshot()
	if s.Latency.Count == 0 || s.MatchRounds.Count == 0 {
		t.Fatalf("vacuous fixture: latency count %d, match-round count %d",
			s.Latency.Count, s.MatchRounds.Count)
	}
	if s.Latency.Sum == s.Latency.Count {
		t.Fatal("vacuous fixture: no multi-cycle deliveries")
	}
	util := int64(0)
	for _, h := range s.LevelUtil {
		util += h.Count
	}
	if util == 0 {
		t.Fatal("vacuous fixture: level-utilization histograms empty")
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		if !obsv.CountersEqual(ref, run(w)) {
			t.Fatalf("workers=%d: histograms diverge from workers=1", w)
		}
	}
}

// TestSnapshotDuringRun pins the mid-run snapshot contract: while one
// goroutine drives observed runs, concurrent Snapshot calls always see whole
// delivery cycles — the conservation law holds in every snapshot, cycle
// counts never go backwards, and the latency histogram never gets ahead of
// the delivered counter. Run with -race this is also the data-race proof for
// the Observer mutex.
func TestSnapshotDuringRun(t *testing.T) {
	n := 32
	ft := core.NewUniversal(n, 4)
	ms := workload.Random(n, 4*n, 19)
	o := obsv.New(ft)
	e := NewWithOptions(ft, concentrator.KindPartial, 3, Options{Workers: 2, Observer: o})
	e.InjectLoss(0.05, 11)

	prev := o.Snapshot() // all-zero baseline with the right bucket layouts
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			e.RunParallel(ms)
		}
	}()

	snaps := 0
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		s := o.Snapshot()
		snaps++
		c := &s.Counters
		if c.Offered != c.Delivered+c.Dropped+c.Deferred {
			t.Fatalf("snapshot %d tore a cycle: offered %d != delivered %d + dropped %d + deferred %d",
				snaps, c.Offered, c.Delivered, c.Dropped, c.Deferred)
		}
		if c.Cycles < prev.Counters.Cycles || c.Offered < prev.Counters.Offered {
			t.Fatalf("snapshot %d went backwards: cycles %d < %d", snaps, c.Cycles, prev.Counters.Cycles)
		}
		if s.Latency.Count > c.Delivered {
			t.Fatalf("snapshot %d: latency count %d ahead of delivered %d",
				snaps, s.Latency.Count, c.Delivered)
		}
		// Diffs between successive live snapshots must stay consistent too.
		d := s.Sub(prev)
		if d.Counters.Offered != d.Counters.Delivered+d.Counters.Dropped+d.Counters.Deferred {
			t.Fatalf("snapshot %d: diff violates conservation: %+v", snaps, d.Counters)
		}
		prev = s
	}
	<-done
	// The final snapshot must match the settled counters exactly.
	s := o.Snapshot()
	if s.Counters.Delivered != o.C.Delivered || s.Latency.Count != o.C.Delivered {
		t.Fatalf("final snapshot diverges: %+v vs delivered %d", s.Counters, o.C.Delivered)
	}
}
