package sim

import (
	"fmt"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/sched"
)

// This file implements the paper's off-line compilation artifact: "the
// switches, although dynamically set, have their settings predetermined by an
// off-line scheduling algorithm" (Section II). CompileSettings runs a
// schedule through the engine once and records every wire assignment; the
// result is the compiled program a real off-line fat-tree would load —
// per delivery cycle, per message, the exact wire held in every channel on
// its path. Replay applies the settings with no concentrator logic at all
// (the acknowledgment hardware can be omitted, "thereby reducing the
// complexity of the design") and re-verifies the physical invariants.

// WirePath is a message's compiled route: the wire it occupies in each
// channel along its unique path, in path order.
type WirePath struct {
	Msg   core.Message
	Wires []int // parallel to the tree path returned by FatTree.Path
}

// Settings is a compiled schedule: the complete switch program for a message
// set.
type Settings struct {
	Tree   core.Topology
	Cycles [][]WirePath
}

// CycleCount returns the number of delivery cycles in the program.
func (st *Settings) CycleCount() int { return len(st.Cycles) }

// Messages returns the total message count across cycles.
func (st *Settings) Messages() int {
	total := 0
	for _, c := range st.Cycles {
		total += len(c)
	}
	return total
}

// CompileSettings lowers a valid schedule to switch settings by running each
// cycle through ideal-concentrator hardware and recording the wire
// assignments. It panics if the schedule drops anything — a valid one-cycle
// partition never does on ideal switches, so a panic means the schedule was
// not verified.
func CompileSettings(t core.Topology, s *sched.Schedule) *Settings {
	e := New(t, concentrator.KindIdeal, 0)
	st := &Settings{Tree: t, Cycles: make([][]WirePath, len(s.Cycles))}
	for ci, cyc := range s.Cycles {
		delivered, res, paths := e.runCycleAutoWithHistory(cyc)
		for i, ok := range delivered {
			if !ok {
				panic(fmt.Sprintf("sim: compile dropped message %v in cycle %d (%+v) — unverified schedule?",
					cyc[i], ci, res))
			}
			st.Cycles[ci] = append(st.Cycles[ci], WirePath{Msg: cyc[i], Wires: paths[i]})
		}
	}
	return st
}

// Replay validates and "executes" compiled settings without any switching
// logic: for every cycle it checks that each message's wire path is
// consistent (one wire per channel on the unique route, within capacity,
// no two messages sharing a wire) and returns the delivery count. It is the
// software analog of streaming the program through dumb switches.
//
// The wire-occupancy check uses one flat arena over all channels — an offset
// table built from the memoized capacity table plus a cycle-stamped wire
// array — rather than nested per-channel maps, so replaying a program does
// O(total wires) setup once and O(1) work per wire thereafter.
func (st *Settings) Replay() (delivered int, err error) {
	caps := core.CapTableOf(st.Tree)
	// off[2*v+dir] is the arena offset of channel (v, dir); both directions
	// of an edge have the same width but occupy distinct wire slots.
	off := make([]int, 2*len(caps))
	total := 0
	for v := 1; v < len(caps); v++ {
		off[2*v] = total
		off[2*v+1] = total + caps[v]
		total += 2 * caps[v]
	}
	used := make([]int, total) // stamped with cycle index + 1; zero = free

	var buf []core.Channel
	for ci, cyc := range st.Cycles {
		stamp := ci + 1
		for _, wp := range cyc {
			buf = st.Tree.Path(wp.Msg, buf[:0])
			if len(buf) != len(wp.Wires) {
				return delivered, fmt.Errorf("sim: cycle %d message %v: %d wires for %d channels",
					ci, wp.Msg, len(wp.Wires), len(buf))
			}
			for i, c := range buf {
				w := wp.Wires[i]
				if w < 0 || w >= caps[c.Node] {
					return delivered, fmt.Errorf("sim: cycle %d message %v: wire %d out of range on %v",
						ci, wp.Msg, w, c)
				}
				slot := off[2*c.Node+int(c.Dir)] + w
				if used[slot] == stamp {
					return delivered, fmt.Errorf("sim: cycle %d: wire %d of %v assigned twice", ci, w, c)
				}
				used[slot] = stamp
			}
			delivered++
		}
	}
	return delivered, nil
}
