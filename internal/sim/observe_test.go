package sim

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/obsv"
	"fattree/internal/workload"
)

// TestObserverDoesNotPerturbRouting pins the first half of the observability
// cost contract: attaching an observer changes nothing about what the engine
// computes — stats, per-cycle profiles, and delivered vectors are
// bit-identical with and without one, across switch kinds and loss injection.
func TestObserverDoesNotPerturbRouting(t *testing.T) {
	n := 32
	ft := core.NewUniversal(n, 8)
	ms := workload.Random(n, 3*n, 7)
	for _, tc := range []struct {
		name string
		kind concentrator.Kind
		loss float64
	}{
		{"ideal", concentrator.KindIdeal, 0},
		{"partial", concentrator.KindPartial, 0},
		{"ideal-lossy", concentrator.KindIdeal, 0.05},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(o *obsv.Observer) *Engine {
				e := NewWithOptions(ft, tc.kind, 3, Options{Workers: 1, Observer: o})
				if tc.loss > 0 {
					e.InjectLoss(tc.loss, 5)
				}
				return e
			}
			plain := mk(nil).Run(ms)
			o := obsv.New(ft)
			o.EnableTrace(256) // tracing must be as invisible as counting
			observed := mk(o).Run(ms)
			if !reflect.DeepEqual(plain, observed) {
				t.Fatalf("observer perturbed the run\nplain    %+v\nobserved %+v", plain, observed)
			}
			// The observer's outcome totals must agree with the engine's own.
			c := &o.C
			if c.Delivered != int64(plain.Delivered) || c.Dropped != int64(plain.Drops) ||
				c.Deferred != int64(plain.Deferrals) || c.Cycles != int64(plain.Cycles) {
				t.Fatalf("counter totals diverge from stats: %+v vs %+v", c, plain)
			}
		})
	}
}

// TestParallelObserverCountersEqual pins the determinism contract for workers
// {1, 2, GOMAXPROCS}: every counter array and the full event stream are
// identical regardless of worker count, because observation happens only at
// serial merge points.
func TestParallelObserverCountersEqual(t *testing.T) {
	n := 32
	ft := core.NewUniversal(n, 4)
	ms := workload.Random(n, 4*n, 11)
	workers := []int{1, 2, runtime.GOMAXPROCS(0)}

	run := func(w int) *obsv.Observer {
		o := obsv.New(ft)
		o.EnableTrace(4096)
		e := NewWithOptions(ft, concentrator.KindPartial, 9, Options{Workers: w, Observer: o})
		e.InjectLoss(0.03, 13)
		e.RunParallel(ms)
		return o
	}
	ref := run(workers[0])
	for _, w := range workers[1:] {
		o := run(w)
		if !obsv.CountersEqual(ref, o) {
			t.Fatalf("workers=%d: counter totals diverge from workers=%d", w, workers[0])
		}
		if !reflect.DeepEqual(ref.Trace().Events(), o.Trace().Events()) {
			t.Fatalf("workers=%d: event stream diverges from workers=%d", w, workers[0])
		}
	}
}

// TestDeliveryConservation is the satellite-3 property test: on every path
// through the engine — retry loop, schedule playback, randomized online, with
// and without loss injection — the observer's conservation law
// Offered == Delivered + Dropped + Deferred holds exactly, the per-switch drop
// tally equals the global drop count, and no retried flight is double-counted
// in the delivered totals (Delivered == len(ms) on complete runs, and
// Offered == len(ms) + Retried).
func TestDeliveryConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(3)) // 8..32
		ft := workload.RandomTreeProfile(n, 8, seed)
		ms := workload.Random(n, 1+rng.Intn(4*n), seed+1)

		check := func(name string, o *obsv.Observer, stats Stats) bool {
			c := &o.C
			if c.Offered != c.Delivered+c.Dropped+c.Deferred {
				t.Logf("seed %d %s: offered %d != delivered %d + dropped %d + deferred %d",
					seed, name, c.Offered, c.Delivered, c.Dropped, c.Deferred)
				return false
			}
			if c.Delivered != int64(stats.Delivered) || c.Dropped != int64(stats.Drops) ||
				c.Deferred != int64(stats.Deferrals) || c.Cycles != int64(stats.Cycles) {
				t.Logf("seed %d %s: counters %+v diverge from stats %+v", seed, name, c, stats)
				return false
			}
			perSwitch := int64(0)
			for _, d := range c.Drops {
				perSwitch += d
			}
			if perSwitch != c.Dropped {
				t.Logf("seed %d %s: per-switch drops %d != total %d", seed, name, perSwitch, c.Dropped)
				return false
			}
			for v := range c.Requests {
				if c.Requests[v] != c.Grants[v]+c.Drops[v] {
					t.Logf("seed %d %s: node %d requests %d != grants %d + drops %d",
						seed, name, v, c.Requests[v], c.Grants[v], c.Drops[v])
					return false
				}
				if c.Faults[v] > c.Drops[v] || c.Faults[v] < 0 {
					t.Logf("seed %d %s: node %d faults %d outside [0, drops %d]",
						seed, name, v, c.Faults[v], c.Drops[v])
					return false
				}
			}
			if stats.Delivered == len(ms) {
				// Complete run: every message delivered exactly once, and every
				// extra offer was a counted retry.
				if c.Delivered != int64(len(ms)) {
					t.Logf("seed %d %s: delivered counter %d != %d messages",
						seed, name, c.Delivered, len(ms))
					return false
				}
				if c.Offered != int64(len(ms))+c.Retried {
					t.Logf("seed %d %s: offered %d != %d messages + retried %d",
						seed, name, c.Offered, len(ms), c.Retried)
					return false
				}
			}
			return true
		}

		// Retry loop with transient faults (the loss-injection accounting the
		// satellite audits).
		o1 := obsv.New(ft)
		e1 := NewWithOptions(ft, concentrator.KindIdeal, seed, Options{Workers: 1, Observer: o1})
		e1.InjectLoss(0.02+0.08*rng.Float64(), seed+2)
		if !check("lossy-run", o1, e1.Run(ms)) {
			return false
		}

		// Randomized online protocol, lossy, auto worker count.
		o2 := obsv.New(ft)
		e2 := NewWithOptions(ft, concentrator.KindIdeal, seed, Options{Workers: 0, Observer: o2})
		e2.InjectLoss(0.05, seed+3)
		if !check("online-random", o2, RunOnlineRandom(e2, ms, seed+4)) {
			return false
		}

		// Partial concentrators without faults, cycle-sequence path.
		o3 := obsv.New(ft)
		e3 := NewWithOptions(ft, concentrator.KindPartial, seed, Options{Workers: 2, Observer: o3})
		cycles := []core.MessageSet{ms[:len(ms)/2], ms[len(ms)/2:]}
		if !check("cycles", o3, e3.RunCyclesParallel(cycles)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestObserverReuseAndReset checks the Reset contract across runs on one
// engine: counters tallied after a Reset equal a fresh observer's, including
// the cumulative-hardware-counter deltas (matching rounds, faults), which the
// attach-time priming and Switch's snapshotting must keep aligned.
func TestObserverReuseAndReset(t *testing.T) {
	n := 16
	ft := core.NewUniversal(n, 4)
	ms := workload.Random(n, 2*n, 3)

	reused := obsv.New(ft)
	e := NewWithOptions(ft, concentrator.KindPartial, 1, Options{Workers: 1, Observer: reused})
	e.Run(ms)
	reused.Reset()
	e.Run(ms)

	fresh := obsv.New(ft)
	e2 := NewWithOptions(ft, concentrator.KindPartial, 1, Options{Workers: 1})
	e2.Run(ms) // warm the switches so cumulative counters are non-zero
	e2.SetObserver(fresh)
	e2.Run(ms)

	if !obsv.CountersEqual(reused, fresh) {
		t.Fatal("reset observer diverges from a freshly attached one")
	}
}

// TestSetObserverRejectsWrongTree pins the size check at attach time.
func TestSetObserverRejectsWrongTree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("attaching an observer for a different tree size did not panic")
		}
	}()
	e := New(core.NewUniversal(16, 4), concentrator.KindIdeal, 1)
	e.SetObserver(obsv.New(core.NewUniversal(32, 4)))
}

// TestRunBufferedObserved checks the buffered-model wiring: identical stats
// with and without an observer, and the per-channel Stalls/QueuePeak arrays
// consistent with the aggregate stats.
func TestRunBufferedObserved(t *testing.T) {
	n := 32
	ft := core.NewUniversal(n, 2)
	ms := workload.Random(n, 4*n, 17)
	plain := RunBuffered(ft, ms, 2)
	o := obsv.New(ft)
	observed := RunBufferedObserved(ft, ms, 2, o)
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observer perturbed the buffered run\nplain    %+v\nobserved %+v", plain, observed)
	}
	stalls := int64(0)
	peak := int64(0)
	for ch := range o.C.Stalls {
		stalls += o.C.Stalls[ch]
		if o.C.QueuePeak[ch] > peak {
			peak = o.C.QueuePeak[ch]
		}
	}
	if stalls != int64(plain.Stalls) {
		t.Fatalf("per-channel stalls %d != aggregate %d", stalls, plain.Stalls)
	}
	if peak != int64(plain.MaxQueue) {
		t.Fatalf("per-channel queue peak %d != aggregate %d", peak, plain.MaxQueue)
	}
}
