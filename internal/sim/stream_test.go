package sim

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/obsv"
)

// streamScenario pairs a materialized tree with its implicit twin and a
// message set; every equivalence test below demands bit-identical behavior
// between the dense engine on the FatTree and the streaming engine on the
// ImplicitFatTree.
type streamScenario struct {
	name string
	ft   *core.FatTree
	imp  *core.ImplicitFatTree
	ms   core.MessageSet
	kind concentrator.Kind
	seed int64
	loss float64
}

// mirrorTrees builds a FatTree and an ImplicitFatTree with the same capacity
// profile and the same overrides.
func mirrorTrees(n, w int, overrides map[int]int) (*core.FatTree, *core.ImplicitFatTree) {
	ft := core.NewUniversal(n, w)
	imp := core.NewImplicitUniversal(n, w)
	for v, c := range overrides {
		ft.SetChannelCapacity(v, c)
		imp.SetChannelCapacity(v, c)
	}
	return ft, imp
}

func randomMessages(n, count int, seed int64, external bool) core.MessageSet {
	rng := rand.New(rand.NewSource(seed))
	ms := make(core.MessageSet, 0, count)
	for len(ms) < count {
		if external && rng.Intn(8) == 0 {
			if rng.Intn(2) == 0 {
				ms = append(ms, core.Message{Src: core.External, Dst: rng.Intn(n)})
			} else {
				ms = append(ms, core.Message{Src: rng.Intn(n), Dst: core.External})
			}
			continue
		}
		s, d := rng.Intn(n), rng.Intn(n)
		if s != d {
			ms = append(ms, core.Message{Src: s, Dst: d})
		}
	}
	return ms
}

func streamScenarios() []streamScenario {
	var out []streamScenario

	ft, imp := mirrorTrees(16, 4, nil)
	out = append(out, streamScenario{
		name: "universal-ideal", ft: ft, imp: imp,
		ms: randomMessages(16, 48, 1, true), kind: concentrator.KindIdeal, seed: 7,
	})

	ft, imp = mirrorTrees(32, 8, nil)
	out = append(out, streamScenario{
		name: "universal-partial", ft: ft, imp: imp,
		ms: randomMessages(32, 80, 2, false), kind: concentrator.KindPartial, seed: 11,
	})

	ft, imp = mirrorTrees(16, 4, nil)
	out = append(out, streamScenario{
		name: "universal-lossy", ft: ft, imp: imp,
		ms: randomMessages(16, 40, 3, true), kind: concentrator.KindIdeal, seed: 13, loss: 0.08,
	})

	// Narrowing overrides on both children of node 2 and on a leaf channel:
	// the sparse overlay must agree with the dense capacity table everywhere.
	ov := map[int]int{4: 1, 5: 1, 16: 1}
	ft, imp = mirrorTrees(16, 8, ov)
	out = append(out, streamScenario{
		name: "overrides-ideal", ft: ft, imp: imp,
		ms: randomMessages(16, 64, 4, true), kind: concentrator.KindIdeal, seed: 17,
	})

	// Overrides narrow both siblings: the dense switch constructor sizes a
	// node's two down ports from its left child alone, so a lone-child
	// override would make the dense engine itself reject wide wires.
	ft, imp = mirrorTrees(8, 2, map[int]int{6: 1, 7: 1})
	out = append(out, streamScenario{
		name: "overrides-partial-lossy", ft: ft, imp: imp,
		ms: randomMessages(8, 32, 5, false), kind: concentrator.KindPartial, seed: 19, loss: 0.05,
	})

	// Tiny tree: the shard level clamps to the tree depth.
	ft2 := core.NewConstant(2, 3)
	imp2 := core.NewImplicitConstant(2, 3)
	out = append(out, streamScenario{
		name: "two-leaves", ft: ft2, imp: imp2,
		ms:   core.MessageSet{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 0, Dst: 1}, {Src: core.External, Dst: 0}},
		kind: concentrator.KindIdeal, seed: 23,
	})

	return out
}

func (sc *streamScenario) engine(t core.Topology, workers int) *Engine {
	e := NewWithOptions(t, sc.kind, sc.seed, Options{Workers: workers})
	if sc.loss > 0 {
		e.InjectLoss(sc.loss, sc.seed+1)
	}
	return e
}

// TestStreamMatchesDense pins the headline equivalence: for every scenario
// the streaming engine reproduces the dense engine bit for bit — Stats
// including the per-cycle delivery profile — for workers 1, 2, and
// GOMAXPROCS, with and without an attached observer, whose counter totals
// and histograms must also agree across engines and worker counts.
func TestStreamMatchesDense(t *testing.T) {
	for _, sc := range streamScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			dense := sc.engine(sc.ft, 1).Run(sc.ms)
			for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				stream := sc.engine(sc.imp, workers).RunParallel(sc.ms)
				if !reflect.DeepEqual(dense, stream) {
					t.Fatalf("workers=%d: stream diverges from dense\ndense  %+v\nstream %+v",
						workers, dense, stream)
				}
			}

			// Dense observers on both engines: identical counter totals and
			// histograms regardless of engine and worker count.
			oDense := obsv.New(sc.ft)
			eD := sc.engine(sc.ft, 1)
			eD.SetObserver(oDense)
			obsDense := eD.Run(sc.ms)
			if !reflect.DeepEqual(obsDense, dense) {
				t.Fatalf("observer perturbed the dense run")
			}
			for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				oStream := obsv.New(sc.imp)
				eS := sc.engine(sc.imp, workers)
				eS.SetObserver(oStream)
				obsStream := eS.RunParallel(sc.ms)
				if !reflect.DeepEqual(obsStream, dense) {
					t.Fatalf("workers=%d: observed stream stats diverge", workers)
				}
				if !obsv.CountersEqual(oDense, oStream) {
					t.Fatalf("workers=%d: stream observer counters diverge from dense", workers)
				}
			}

			// A compact observer on the streaming engine must report the same
			// per-level aggregation as the dense observer, in O(levels) memory.
			oCompact := obsv.NewCompact(sc.imp)
			eC := sc.engine(sc.imp, 2)
			eC.SetObserver(oCompact)
			if got := eC.RunParallel(sc.ms); !reflect.DeepEqual(got, dense) {
				t.Fatalf("compact observer perturbed the stream run")
			}
			want, got := oDense.PerLevel(), oCompact.PerLevel()
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("compact per-level summary diverges\ndense   %+v\ncompact %+v", want, got)
			}
			cD, cC := &oDense.C, &oCompact.C
			if cD.Offered != cC.Offered || cD.Delivered != cC.Delivered ||
				cD.Dropped != cC.Dropped || cD.Deferred != cC.Deferred {
				t.Fatalf("compact outcome counters diverge: %+v vs %+v", cD, cC)
			}
		})
	}
}

// TestStreamCompiledSettings pins wire-history equivalence: compiling the
// same schedule on the dense and streaming engines must produce identical
// per-message wire paths, cycle by cycle.
func TestStreamCompiledSettings(t *testing.T) {
	ft, imp := mirrorTrees(16, 4, nil)
	ms := randomMessages(16, 40, 9, true)
	sD, stD := compileFor(t, ft, ms)
	sS, stS := compileFor(t, imp, ms)
	if sD.Cycles != sS.Cycles {
		t.Fatalf("schedule cycle counts diverge: %d vs %d", sD.Cycles, sS.Cycles)
	}
	if !reflect.DeepEqual(stD.Cycles, stS.Cycles) {
		t.Fatalf("compiled wire paths diverge between dense and stream engines")
	}
	if d, err := stS.Replay(); err != nil || d != len(ms) {
		t.Fatalf("stream-compiled settings replay: delivered %d err %v", d, err)
	}
}

func compileFor(t *testing.T, tree core.Topology, ms core.MessageSet) (Stats, *Settings) {
	t.Helper()
	stats, sched := DeliverOffline(tree, ms)
	if stats.Drops != 0 || stats.Deferrals != 0 {
		t.Fatalf("offline delivery on %v dropped or deferred: %+v", tree, stats)
	}
	return stats, CompileSettings(tree, sched)
}

// TestStreamEngineReuse runs shrinking and growing message sets through one
// streaming engine and checks each against a fresh engine: the shard scratch
// (keys, stamps, runs) must not leak state between cycles or runs.
func TestStreamEngineReuse(t *testing.T) {
	_, imp := mirrorTrees(32, 4, nil)
	ms := randomMessages(32, 96, 21, true)
	reused := New(imp, concentrator.KindIdeal, 3)
	for rep, sc := range []core.MessageSet{ms, ms[:12], ms, ms[:5], ms[:0], ms} {
		got := reused.Run(sc)
		want := New(imp, concentrator.KindIdeal, 3).Run(sc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rep %d: reused stream engine diverges\nreused %+v\nfresh  %+v", rep, got, want)
		}
	}
}

// TestStreamWorkerDeterminism runs a larger implicit-only scenario across
// many worker counts; every run must be identical to the serial reference.
func TestStreamWorkerDeterminism(t *testing.T) {
	imp := core.NewImplicitUniversal(1<<12, 64)
	ms := randomMessages(1<<12, 4096, 31, true)
	ref := New(imp, concentrator.KindIdeal, 1).Run(ms)
	if ref.Delivered != len(ms) {
		t.Fatalf("reference run undelivered: %+v", ref)
	}
	for _, workers := range []int{2, 3, 5, 8, runtime.GOMAXPROCS(0)} {
		got := NewWithOptions(imp, concentrator.KindIdeal, 1, Options{Workers: workers}).RunParallel(ms)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d diverges from serial reference", workers)
		}
	}
}

// TestStreamHugeTopology exercises the headline capability at a size the
// dense engine could not materialize cheaply: 2^20 endpoints. The message
// set is small — the point is that engine construction and routing cost are
// functions of the message count, not the processor count.
func TestStreamHugeTopology(t *testing.T) {
	const n = 1 << 20
	imp := core.NewImplicitUniversal(n, 1<<14)
	ms := randomMessages(n, 2048, 41, true)
	e := New(imp, concentrator.KindIdeal, 0)
	stats := e.Run(ms)
	if stats.Delivered != len(ms) {
		t.Fatalf("huge run undelivered: %+v", stats)
	}
	if stats.Drops != 0 {
		t.Fatalf("ideal switches dropped: %+v", stats)
	}
}

// TestStreamRunCycleAllocs pins the scratch-arena contract on the streaming
// path: after warm-up, a serial ideal-kind RunCycle allocates nothing.
func TestStreamRunCycleAllocs(t *testing.T) {
	imp := core.NewImplicitUniversal(1<<16, 256)
	ms := randomMessages(1<<16, 512, 51, false)
	e := NewWithOptions(imp, concentrator.KindIdeal, 0, Options{Workers: 1})
	e.RunCycle(ms) // warm the arena to its high-water mark
	if avg := testing.AllocsPerRun(10, func() { e.RunCycle(ms) }); avg != 0 {
		t.Fatalf("steady-state stream RunCycle allocates: %v allocs/op", avg)
	}
}
