package sim

import (
	"testing"

	"fattree/internal/concentrator"
	"fattree/internal/core"
)

func TestOpenLoopBelowSaturation(t *testing.T) {
	// Light offered load: backlog stays bounded, latency small.
	ft := core.NewUniversal(64, 32)
	e := New(ft, concentrator.KindIdeal, 0)
	stats := RunOpenLoop(e, UniformArrivals(ft, 4, 1), 200, 2)
	if stats.Offered == 0 || stats.Delivered == 0 {
		t.Fatalf("degenerate run: %+v", stats)
	}
	if stats.BacklogSlope > 0.5 {
		t.Errorf("backlog grows (%.2f/cycle) under light load", stats.BacklogSlope)
	}
	if stats.MeanLatency > 5 {
		t.Errorf("latency %.1f cycles under light load", stats.MeanLatency)
	}
}

func TestOpenLoopAboveSaturation(t *testing.T) {
	// Offered load far beyond the skinny tree's capacity: backlog must grow
	// steadily.
	ft := core.NewConstant(64, 1)
	e := New(ft, concentrator.KindIdeal, 0)
	stats := RunOpenLoop(e, UniformArrivals(ft, 64, 3), 200, 4)
	if stats.BacklogSlope < 1 {
		t.Errorf("backlog slope %.2f under 2x overload — saturation not visible", stats.BacklogSlope)
	}
	if stats.Backlog == 0 {
		t.Errorf("no backlog under overload")
	}
}

func TestOpenLoopConservation(t *testing.T) {
	ft := core.NewUniversal(32, 8)
	e := New(ft, concentrator.KindIdeal, 0)
	stats := RunOpenLoop(e, UniformArrivals(ft, 8, 5), 100, 6)
	if stats.Delivered+stats.Backlog != stats.Offered {
		t.Errorf("conservation violated: %d + %d != %d",
			stats.Delivered, stats.Backlog, stats.Offered)
	}
}

func TestOpenLoopReproducible(t *testing.T) {
	ft := core.NewUniversal(32, 8)
	a := RunOpenLoop(New(ft, concentrator.KindIdeal, 0), UniformArrivals(ft, 8, 5), 50, 7)
	b := RunOpenLoop(New(ft, concentrator.KindIdeal, 0), UniformArrivals(ft, 8, 5), 50, 7)
	if a != b {
		t.Errorf("same seeds, different stats: %+v vs %+v", a, b)
	}
}
