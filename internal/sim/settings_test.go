package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fattree/internal/core"
	"fattree/internal/sched"
	"fattree/internal/workload"
)

func TestCompileAndReplay(t *testing.T) {
	ft := core.NewUniversal(64, 16)
	ms := workload.Random(64, 300, 1)
	s := sched.OffLine(ft, ms)
	if err := s.Verify(ms); err != nil {
		t.Fatalf("%v", err)
	}
	st := CompileSettings(ft, s)
	if st.CycleCount() != s.Length() {
		t.Errorf("compiled %d cycles for a %d-cycle schedule", st.CycleCount(), s.Length())
	}
	if st.Messages() != len(ms) {
		t.Errorf("compiled %d messages, want %d", st.Messages(), len(ms))
	}
	delivered, err := st.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if delivered != len(ms) {
		t.Errorf("replayed %d messages", delivered)
	}
}

func TestCompiledWirePathsMatchRoutes(t *testing.T) {
	ft := core.NewUniversal(32, 8)
	ms := workload.RandomPermutation(32, 2)
	s := sched.OffLine(ft, ms)
	st := CompileSettings(ft, s)
	for _, cyc := range st.Cycles {
		for _, wp := range cyc {
			path := ft.Path(wp.Msg, nil)
			if len(path) != len(wp.Wires) {
				t.Fatalf("message %v: %d wires for %d channels", wp.Msg, len(wp.Wires), len(path))
			}
			for i, c := range path {
				if wp.Wires[i] < 0 || wp.Wires[i] >= ft.Capacity(c) {
					t.Fatalf("message %v: wire %d invalid on %v", wp.Msg, wp.Wires[i], c)
				}
			}
		}
	}
}

func TestReplayDetectsCorruption(t *testing.T) {
	ft := core.NewConstant(8, 2)
	ms := core.MessageSet{{Src: 0, Dst: 7}, {Src: 1, Dst: 6}}
	s := sched.OffLine(ft, ms)
	st := CompileSettings(ft, s)
	// Corrupt: force two messages onto the same wire of the same channel.
	if len(st.Cycles[0]) >= 2 {
		copy(st.Cycles[0][1].Wires, st.Cycles[0][0].Wires)
		if _, err := st.Replay(); err == nil {
			t.Errorf("replay accepted conflicting wire assignments")
		}
	}
	// Corrupt: out-of-range wire.
	st2 := CompileSettings(ft, s)
	st2.Cycles[0][0].Wires[0] = 99
	if _, err := st2.Replay(); err == nil {
		t.Errorf("replay accepted out-of-range wire")
	}
}

func TestCompileProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(3))
		ft := workload.RandomTreeProfile(n, 8, seed)
		ms := workload.Random(n, 1+rng.Intn(3*n), seed+1)
		s := sched.OffLine(ft, ms)
		st := CompileSettings(ft, s)
		delivered, err := st.Replay()
		return err == nil && delivered == len(ms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
