package sim

import (
	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/par"
)

// This file is the delivery-cycle data plane for generalized k-ary fat-trees
// (core.KaryFatTree): the same inject → bucketed upward sweep → bucketed
// downward sweep → collect pipeline as the dense binary engine, with the
// heap-index arithmetic (v>>1, 2v/2v+1, level = bits.Len) replaced by the
// topology's level-order tables (Parent, Children, LevelRange, AncestorAt).
//
// The plane routes with *inline ideal concentrators* — the same rules the
// streaming engine applies to uniform shards, generalized to d children:
//
//   - Upward: when the parent channel is at least as wide as all child
//     channels together, every message passes through on the wire it already
//     holds, offset by the summed widths of the preceding siblings (the
//     identity concentrator of Section III). Otherwise the first cap(parent)
//     requesters, in deterministic message order, win wires 0,1,2,...
//   - Downward: each message steers to the destination-leaf ancestor one
//     level down; the first cap(child) requesters per child win that child's
//     wires 0,1,2,...
//
// Partial (Section IV) concentrators and loss injection are binary-hardware
// models and are rejected at construction — the k-ary plane exists to study
// topology shape (radix, oversubscription), not switch internals.
//
// Determinism: buckets are built in message-index order before the level
// fan-out, each switch is contested by exactly one worker, and the routing
// rules above consume no randomness, so the parallel path is bit-identical
// to the serial path for any worker count (the k-ary phase of
// FuzzEngineParallelEquivalence pins this).

// karyState is the per-engine state of the k-ary plane. It replaces the
// dense engine's switch objects and per-node scratch; the shared scratch
// arena (flights, buckets, injection counters, wire histories) is reused
// unchanged.
type karyState struct {
	t *core.KaryFatTree
	// node[v] is internal node v's routing scratch; leaf slots stay empty.
	node []karyNodeScratch
}

// karyNodeScratch holds one internal node's contest state: epoch-stamped
// wire guards for the up channel above it and the down channels above its
// children (the hardware invariant: no wire assigned twice in one sweep),
// plus the per-child rank counters and pass-through offsets of the inline
// ideal rules.
type karyNodeScratch struct {
	upStamp   []int64   // wires of the up channel above this node
	downStamp [][]int64 // per child ordinal: wires of the down channel above it
	rank      []int     // per child ordinal: down-contest rank counter
	off       []int     // per child ordinal: prefix sum of preceding siblings' up widths
	sumChild  int       // total child-side up wires (pass-through threshold)
	gen       int64
}

// newKaryEngine builds the k-ary delivery engine. Only ideal concentrators
// are supported; the worker pool and observer semantics match the dense
// engine.
func newKaryEngine(t *core.KaryFatTree, kind concentrator.Kind, seed int64, opts Options) *Engine {
	if kind != concentrator.KindIdeal {
		panic("sim: k-ary topologies route with ideal concentrators only; partial concentrators model the binary Section IV hardware")
	}
	_ = seed // no randomness: ideal routing is deterministic
	e := &Engine{
		tree: t,
		pool: par.New(opts.Workers),
		caps: core.CapTableOf(t),
		kary: &karyState{t: t},
	}
	ks := e.kary
	ks.node = make([]karyNodeScratch, t.Nodes()+1)
	maxLevelNodes := 1
	for k := 0; k < t.Levels(); k++ {
		first, count := t.LevelRange(k)
		if count > maxLevelNodes {
			maxLevelNodes = count
		}
		for v := first; v < first+count; v++ {
			cFirst, cCount := t.Children(v)
			ns := &ks.node[v]
			ns.upStamp = make([]int64, e.caps[v])
			ns.downStamp = make([][]int64, cCount)
			ns.rank = make([]int, cCount)
			ns.off = make([]int, cCount)
			for c := 0; c < cCount; c++ {
				ns.downStamp[c] = make([]int64, e.caps[cFirst+c])
				ns.off[c] = ns.sumChild
				ns.sumChild += e.caps[cFirst+c]
			}
		}
	}
	n := t.Processors()
	e.scr.injUsed = make([]int, n)
	e.scr.injStamp = make([]int64, n)
	e.scr.buckets = make([][]int, maxLevelNodes)
	e.scr.nodes = make([]int, 0, maxLevelNodes)
	e.scr.dropped = make([]int, maxLevelNodes)
	e.levelWorker = func(k int) {
		scr := &e.scr
		v := scr.nodes[k]
		var local CycleResult
		e.routeKaryGathered(v, scr.flights, scr.buckets[v-scr.curFirst], scr.curUp, &local)
		scr.dropped[v-scr.curFirst] = local.Dropped
	}
	if opts.Observer != nil {
		e.SetObserver(opts.Observer)
	}
	return e
}

// runCycleKary is runCycle with the sweeps driven by the k-ary level tables.
//
//ftlint:hotpath
func (e *Engine) runCycleKary(pending core.MessageSet, pool *par.Pool) ([]bool, CycleResult) {
	kt := e.kary.t
	scr := &e.scr
	leafLevel := kt.Levels()
	flights, res := e.inject(pending)
	if e.obs != nil {
		e.observeInject(pending, flights)
	}
	scr.nodes = scr.nodes[:0]

	// Upward sweep, leaf parents toward the root: a message ascending
	// through v holds a wire in the up channel above one of v's children
	// and its LCA is strictly above v.
	for level := leafLevel - 1; level >= 0; level-- {
		first, count := kt.LevelRange(level)
		for i := range flights {
			f := &flights[i]
			if f.state != flightUp {
				continue
			}
			p := kt.Parent(f.node)
			if f.lca == p {
				continue
			}
			e.karyOwn(first, count, p, i)
		}
		e.routeLevel(pool, first, true, &res)
	}

	// Downward sweep, root toward the leaves: a message either turns at v
	// (its LCA is v, and it still holds a child-side up wire) or descends
	// through v (it holds the parent-side down wire above v).
	for level := 0; level < leafLevel; level++ {
		first, count := kt.LevelRange(level)
		for i := range flights {
			f := &flights[i]
			switch f.state {
			case flightUp: // waiting to turn at its LCA
				e.karyOwn(first, count, f.lca, i)
			case flightDown: // holds the down wire above f.node
				e.karyOwn(first, count, f.node, i)
			}
		}
		e.routeLevel(pool, first, false, &res)
	}

	delivered := e.collect(pending, flights, &res)
	if e.obs != nil {
		e.obs.CycleEnd(res.Delivered, res.Dropped, res.Deferred)
	}
	return delivered, res
}

// karyOwn is own with an explicit level width (k-ary levels are not powers
// of two).
//
//ftlint:hotpath
func (e *Engine) karyOwn(first, count, v, i int) {
	scr := &e.scr
	if v >= first && v < first+count {
		if len(scr.buckets[v-first]) == 0 {
			scr.nodes = append(scr.nodes, v)
		}
		scr.buckets[v-first] = append(scr.buckets[v-first], i)
	}
}

// routeKaryGathered contests node v's inline ideal concentrators with the
// flights in who (in order) and applies the wire assignments. It touches only
// the listed flights, v's scratch slot, and res.Dropped, so calls for
// distinct nodes of one level are independent.
//
//ftlint:hotpath
func (e *Engine) routeKaryGathered(v int, flights []flight, who []int, upSweep bool, res *CycleResult) {
	if len(who) == 0 {
		return
	}
	kt := e.kary.t
	leafLevel := kt.Levels()
	vLevel := kt.Level(v)
	ns := &e.kary.node[v]
	ns.gen++
	childFirst, childCount := kt.Children(v)

	if upSweep {
		// Contest the single parent-side output. Pass-through preserves each
		// message's child wire (shifted by the sibling prefix); a narrower
		// parent grants wires in request order.
		capParent := e.caps[v]
		pass := capParent >= ns.sumChild
		rank := 0
		for _, i := range who {
			f := &flights[i]
			w := -1
			if pass {
				w = ns.off[f.node-childFirst] + f.wire
			} else if rank < capParent {
				w = rank
			}
			rank++
			if w < 0 {
				f.state = flightLost
				res.Dropped++
				continue
			}
			if w >= capParent || ns.upStamp[w] == ns.gen {
				panic("sim: up-channel wire oversubscribed (switch bug)")
			}
			ns.upStamp[w] = ns.gen
			f.wire = w
			e.scr.histArena[f.histOff+f.histLen] = w
			f.histLen++
			f.state = flightUp
			f.node = v
			if v == 1 && f.msg.Dst == core.External {
				// The root up channel is the external interface: delivered.
				f.state = flightDone
			}
		}
		return
	}

	// Downward: steer each flight to the destination-leaf ancestor one level
	// below v; the first cap(child) requesters per child win its wires.
	for c := 0; c < childCount; c++ {
		ns.rank[c] = 0
	}
	for _, i := range who {
		f := &flights[i]
		child := kt.AncestorAt(f.dstLeaf, vLevel+1)
		c := child - childFirst
		w := -1
		if ns.rank[c] < e.caps[child] {
			w = ns.rank[c]
		}
		ns.rank[c]++
		if w < 0 {
			f.state = flightLost
			res.Dropped++
			continue
		}
		if ns.downStamp[c][w] == ns.gen {
			panic("sim: down-channel wire oversubscribed (switch bug)")
		}
		ns.downStamp[c][w] = ns.gen
		f.wire = w
		e.scr.histArena[f.histOff+f.histLen] = w
		f.histLen++
		f.node = child
		f.state = flightDown
		if vLevel+1 == leafLevel {
			f.state = flightDone
		}
	}
}
