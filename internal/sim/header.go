package sim

import (
	"fmt"
	"math/bits"

	"fattree/internal/core"
)

// This file encodes the bit-serial message format of Fig. 2 concretely: the
// M bit announcing a message, the address bits that steer it (one routing
// decision per switch, stripped as the path is established), the wire-select
// bits the concentrator cascades consume ("these decision bits can be
// interleaved with the address bits", Section IV), and the payload. The
// encoder lowers a compiled WirePath to the exact bit string the hardware
// would clock through the network, and the decoder walks the tree to verify
// that the header steers the message to its destination — a bit-level check
// of the whole routing story.

// Header is the on-wire representation of one message.
type Header struct {
	// Bits is the full frame: M bit, then per-hop steering (routing bit +
	// wire-select bits), then the payload.
	Bits []byte
	// AddressBits counts the steering portion (everything between the M bit
	// and the payload).
	AddressBits int
}

// EncodeHeader lowers a compiled wire path to its Fig. 2 frame on tree t.
// Each hop after injection contributes one routing bit — 0 to continue
// upward (or to the left child going down), 1 to turn (or to the right
// child) — followed by enough wire-select bits to name the assigned wire in
// the next channel (ceil(lg cap) bits, the concentrator cascade's decision
// bits). payloadBits zero bits stand in for the data.
func EncodeHeader(t core.Topology, wp WirePath, payloadBits int) Header {
	if !core.HeapIndexed(t) {
		panic("sim: the Fig. 2 frame format is binary (one routing bit per hop); k-ary topologies have no header encoding")
	}
	path := t.Path(wp.Msg, nil)
	if len(path) != len(wp.Wires) {
		panic(fmt.Sprintf("sim: wire path mismatch for %v", wp.Msg))
	}
	h := Header{Bits: []byte{1}} // M bit: this frame carries a message
	for i := 1; i < len(path); i++ {
		prev, cur := path[i-1], path[i]
		// Routing bit: the switching decision made at the node joining
		// channel prev to channel cur.
		var routing byte
		if prev.Dir == core.Up && cur.Dir == core.Up {
			routing = 0 // continue upward
		} else {
			// Entering a down channel: 0 = left child, 1 = right child.
			routing = byte(cur.Node & 1)
		}
		h.Bits = append(h.Bits, routing)
		// Wire-select bits for the assigned wire in channel cur.
		sel := selectBits(t.Capacity(cur))
		for b := sel - 1; b >= 0; b-- {
			h.Bits = append(h.Bits, byte((wp.Wires[i]>>uint(b))&1))
		}
	}
	h.AddressBits = len(h.Bits) - 1
	for i := 0; i < payloadBits; i++ {
		h.Bits = append(h.Bits, 0)
	}
	return h
}

// DecodeHeader walks the tree under the header's steering bits, starting
// from the message's first channel with its assigned wire, and returns the
// channels and wires traversed. It is the software model of the switches
// consuming the frame; the result must equal the original wire path.
func DecodeHeader(t core.Topology, msg core.Message, firstWire int, h Header) ([]core.Channel, []int, error) {
	if !core.HeapIndexed(t) {
		panic("sim: the Fig. 2 frame format is binary (one routing bit per hop); k-ary topologies have no header encoding")
	}
	path := t.Path(msg, nil)
	channels := []core.Channel{path[0]}
	wires := []int{firstWire}
	pos := 1 // skip the M bit
	if len(h.Bits) == 0 || h.Bits[0] != 1 {
		return nil, nil, fmt.Errorf("sim: frame has no M bit")
	}
	cur := path[0]
	for hop := 1; hop < len(path); hop++ {
		if pos >= len(h.Bits) {
			return nil, nil, fmt.Errorf("sim: frame exhausted at hop %d", hop)
		}
		routing := h.Bits[pos]
		pos++
		var next core.Channel
		if cur.Dir == core.Up {
			parent := cur.Node >> 1
			if parentIsTurn(path, hop) {
				child := 2 * parent
				if routing == 1 {
					child++
				}
				next = core.Channel{Node: child, Dir: core.Down}
			} else {
				if routing != 0 {
					return nil, nil, fmt.Errorf("sim: unexpected turn bit at hop %d", hop)
				}
				next = core.Channel{Node: parent, Dir: core.Up}
			}
		} else {
			child := 2 * cur.Node
			if routing == 1 {
				child++
			}
			next = core.Channel{Node: child, Dir: core.Down}
		}
		sel := selectBits(t.Capacity(next))
		wire := 0
		for b := 0; b < sel; b++ {
			if pos >= len(h.Bits) {
				return nil, nil, fmt.Errorf("sim: frame exhausted in wire-select at hop %d", hop)
			}
			wire = wire<<1 | int(h.Bits[pos])
			pos++
		}
		channels = append(channels, next)
		wires = append(wires, wire)
		cur = next
	}
	return channels, wires, nil
}

// parentIsTurn reports whether hop `hop` of the path turns from Up to Down.
func parentIsTurn(path []core.Channel, hop int) bool {
	return path[hop].Dir == core.Down
}

// selectBits returns ceil(lg cap), the wire-select width for a channel.
func selectBits(cap int) int {
	if cap <= 1 {
		return 0
	}
	return bits.Len(uint(cap - 1))
}

// FrameLength returns the total frame length in bits for a message on t:
// 1 (M bit) + steering + payload. The paper's 2·lg n address-bit bound shows
// up as the steering term's routing bits; wire-select bits add the
// concentrator decisions of Section IV.
func FrameLength(t core.Topology, m core.Message, payloadBits int) int {
	path := t.Path(m, nil)
	total := 1 + payloadBits
	for i := 1; i < len(path); i++ {
		total += 1 + selectBits(t.Capacity(path[i]))
	}
	return total
}
