package sim

import (
	"testing"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/obsv"
	"fattree/internal/workload"
)

// TestRunServeMatchesRunOnline pins the request-path entry point to the
// experiment entry point: identical Cycles/Delivered/Drops/Deferrals and
// bit-identical observer counters for every worker count, with PerCycle as
// the only sanctioned difference.
func TestRunServeMatchesRunOnline(t *testing.T) {
	n := 64
	ft := core.NewUniversal(n, 16)
	workloads := map[string]core.MessageSet{
		"perm":   workload.RandomPermutation(n, 1),
		"random": workload.Random(n, 4*n, 2),
		"bitrev": workload.BitReversal(n),
	}
	for name, ms := range workloads {
		for _, workers := range []int{1, 2, 4} {
			oServe := obsv.New(ft)
			oOnline := obsv.New(ft)
			eServe := NewWithOptions(ft, concentrator.KindIdeal, 0, Options{Workers: workers, Observer: oServe})
			eOnline := NewWithOptions(ft, concentrator.KindIdeal, 0, Options{Workers: workers, Observer: oOnline})
			got := eServe.RunServe(ms)
			want := RunOnline(eOnline, ms)
			if got.Cycles != want.Cycles || got.Delivered != want.Delivered ||
				got.Drops != want.Drops || got.Deferrals != want.Deferrals {
				t.Fatalf("%s workers=%d: RunServe %+v != RunOnline %+v", name, workers, got, want)
			}
			if got.PerCycle != nil {
				t.Fatalf("%s workers=%d: RunServe materialized PerCycle", name, workers)
			}
			if !obsv.CountersEqual(oServe, oOnline) {
				t.Fatalf("%s workers=%d: observer counters diverge between RunServe and RunOnline", name, workers)
			}
		}
	}
}

// TestRunServeWorkerEquivalence pins the serving determinism contract: the
// same request sequence replayed at different worker counts leaves
// bit-identical observer counters.
func TestRunServeWorkerEquivalence(t *testing.T) {
	n := 64
	ft := core.NewUniversal(n, 16)
	requests := []core.MessageSet{
		workload.RandomPermutation(n, 3),
		workload.Random(n, 2*n, 4),
		workload.Transpose(n),
	}
	serve := func(workers int) *obsv.Observer {
		o := obsv.New(ft)
		e := NewWithOptions(ft, concentrator.KindIdeal, 0, Options{Workers: workers, Observer: o})
		for _, ms := range requests {
			if st := e.RunServe(ms); st.Delivered != len(ms) {
				t.Fatalf("workers=%d: delivered %d of %d", workers, st.Delivered, len(ms))
			}
		}
		return o
	}
	base := serve(1)
	for _, workers := range []int{2, 4, 8} {
		if !obsv.CountersEqual(base, serve(workers)) {
			t.Fatalf("workers=%d: counters diverge from serial", workers)
		}
	}
}

// TestRunServeSteadyStateAllocs asserts the serving contract directly: a
// warmed engine answers requests with zero heap allocations, observed and
// unobserved.
func TestRunServeSteadyStateAllocs(t *testing.T) {
	n := 128
	ft := core.NewUniversal(n, 32)
	ms := workload.RandomPermutation(n, 5)
	for name, obs := range map[string]*obsv.Observer{"unobserved": nil, "observed": obsv.New(ft)} {
		e := NewWithOptions(ft, concentrator.KindIdeal, 0, Options{Workers: 1, Observer: obs})
		e.RunServe(ms) // warm the scratch arena
		allocs := testing.AllocsPerRun(10, func() {
			if st := e.RunServe(ms); st.Delivered != len(ms) {
				t.Fatalf("incomplete delivery: %+v", st)
			}
		})
		if allocs != 0 {
			t.Errorf("%s RunServe: %.1f allocs/op, want 0", name, allocs)
		}
	}
}
