package sim

import (
	"testing"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/sched"
	"fattree/internal/workload"
)

func TestEngineDeliversExternalOutput(t *testing.T) {
	ft := core.NewUniversal(8, 4)
	e := New(ft, concentrator.KindIdeal, 0)
	delivered, res := e.RunCycle(core.MessageSet{{Src: 3, Dst: core.External}})
	if !delivered[0] || res.Delivered != 1 {
		t.Fatalf("external output not delivered: %+v", res)
	}
}

func TestEngineDeliversExternalInput(t *testing.T) {
	ft := core.NewUniversal(8, 4)
	e := New(ft, concentrator.KindIdeal, 0)
	delivered, res := e.RunCycle(core.MessageSet{{Src: core.External, Dst: 6}})
	if !delivered[0] || res.Delivered != 1 {
		t.Fatalf("external input not delivered: %+v", res)
	}
}

func TestRootChannelLimitsIO(t *testing.T) {
	// w=2 root: at most 2 inputs enter per cycle, the rest defer.
	ft := core.NewConstant(8, 2)
	e := New(ft, concentrator.KindIdeal, 0)
	ms := core.MessageSet{
		{Src: core.External, Dst: 0},
		{Src: core.External, Dst: 3},
		{Src: core.External, Dst: 5},
	}
	_, res := e.RunCycle(ms)
	if res.Delivered != 2 || res.Deferred != 1 {
		t.Fatalf("root-limited injection wrong: %+v", res)
	}
}

func TestExternalScheduleThroughHardware(t *testing.T) {
	ft := core.NewUniversal(64, 8)
	ms := core.Concat(
		workload.ExternalIO(64, 20, 20, 1),
		workload.RandomPermutation(64, 2),
	)
	s := sched.OffLine(ft, ms)
	if err := s.Verify(ms); err != nil {
		t.Fatalf("%v", err)
	}
	e := New(ft, concentrator.KindIdeal, 0)
	stats := RunSchedule(e, s)
	if stats.Drops != 0 || stats.Deferrals != 0 || stats.Delivered != len(ms) {
		t.Fatalf("external schedule playback: %+v", stats)
	}
}

func TestExternalCompileAndReplay(t *testing.T) {
	ft := core.NewUniversal(32, 8)
	ms := workload.ExternalIO(32, 15, 15, 5)
	s := sched.OffLine(ft, ms)
	st := CompileSettings(ft, s)
	delivered, err := st.Replay()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if delivered != len(ms) {
		t.Fatalf("replayed %d of %d", delivered, len(ms))
	}
}

func TestExternalOnlineDelivery(t *testing.T) {
	ft := core.NewUniversal(32, 4)
	e := New(ft, concentrator.KindIdeal, 0)
	ms := core.Concat(workload.ExternalIO(32, 20, 20, 7), workload.Random(32, 50, 8))
	stats := RunOnlineRandom(e, ms, 9)
	if stats.Delivered != len(ms) {
		t.Fatalf("online external delivery incomplete: %+v", stats)
	}
	// The root channel (w=4) passes at most 4 outputs + 4 inputs per cycle:
	// at least ceil(20/4) = 5 cycles needed.
	if stats.Cycles < 5 {
		t.Errorf("cycles %d below the root I/O bound 5", stats.Cycles)
	}
}

func TestExternalTicks(t *testing.T) {
	ft := core.NewConstant(64, 1)
	m := core.Message{Src: 0, Dst: core.External}
	// Path lg n + 1 = 7 channels, plus payload 8 and M bit + trailing.
	if got := MessageTicks(ft, m, 8); got != 7+8+2 {
		t.Errorf("external ticks %d, want 17", got)
	}
}
