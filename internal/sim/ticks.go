package sim

import "fattree/internal/core"

// This file models the bit-serial timing of Section II (Fig. 2). Messages
// snake through the tree with leading bits establishing a path for the
// remainder to follow: the M bit announces a message, one address bit is
// examined (and stripped) per switch, and the data bits trail behind. The
// head therefore advances one channel per clock tick and the tail follows
// 1 + payload ticks later (the address bits are consumed en route), so a
// message with a path of L channels completes in L + payload + 2 ticks and a
// whole delivery cycle lasts max over its messages — O(lg n) for constant
// payloads, the figure Theorem 10 charges per cycle.

// MessageTicks returns the clock ticks for message m to fully arrive within
// a delivery cycle: one tick per channel for the head (the M bit plus the
// leading address bit are examined in constant time per node), plus the
// payload and M bit trailing through the final channel.
func MessageTicks(t core.Topology, m core.Message, payloadBits int) int {
	return t.PathLength(m) + payloadBits + 2
}

// CycleTicks returns the duration of one delivery cycle carrying the message
// set ms: the maximum message completion time, or 0 for an empty cycle.
// Processors synchronize on the longest path, buffering departures as
// Section II describes.
func CycleTicks(t core.Topology, ms core.MessageSet, payloadBits int) int {
	max := 0
	for _, m := range ms {
		if ticks := MessageTicks(t, m, payloadBits); ticks > max {
			max = ticks
		}
	}
	return max
}

// ScheduleTicks totals the clock ticks of a sequence of delivery cycles.
func ScheduleTicks(t core.Topology, cycles []core.MessageSet, payloadBits int) int {
	total := 0
	for _, cyc := range cycles {
		total += CycleTicks(t, cyc, payloadBits)
	}
	return total
}

// MeanMessageTicks returns the average per-message completion time within a
// cycle — the latency figure that exhibits the locality advantage (local
// messages finish long before the cycle's global stragglers).
func MeanMessageTicks(t core.Topology, ms core.MessageSet, payloadBits int) float64 {
	if len(ms) == 0 {
		return 0
	}
	total := 0
	for _, m := range ms {
		total += MessageTicks(t, m, payloadBits)
	}
	return float64(total) / float64(len(ms))
}

// MaxCycleTicks returns the worst-case delivery-cycle duration of the
// fat-tree: the longest possible path (2·lg n channels) plus payload — the
// O(lg n) bound quoted for an entire delivery cycle in Section II.
func MaxCycleTicks(t core.Topology, payloadBits int) int {
	return 2*t.Levels() + payloadBits + 2
}

// PipelinedScheduleTicks models back-to-back delivery cycles with pipelining:
// once a cycle's tails have cleared the first channels, the next cycle's
// heads can enter, so consecutive cycles are separated by the frame length
// (payload + 2 ticks) rather than the full path traversal; only the last
// cycle pays its full drain. Section VII's synchronization discussion
// ("synchronized by delivery cycle ... can be built with different design
// decisions") motivates this optimistic accounting; the conservative figure
// is ScheduleTicks.
func PipelinedScheduleTicks(t core.Topology, cycles []core.MessageSet, payloadBits int) int {
	if len(cycles) == 0 {
		return 0
	}
	frame := payloadBits + 2
	total := (len(cycles) - 1) * frame
	return total + CycleTicks(t, cycles[len(cycles)-1], payloadBits) +
		longestDrain(t, cycles, payloadBits)
}

// longestDrain returns the extra path latency of the longest message in any
// non-final cycle beyond the frame spacing (0 when frames dominate).
func longestDrain(t core.Topology, cycles []core.MessageSet, payloadBits int) int {
	extra := 0
	for _, cyc := range cycles[:len(cycles)-1] {
		for _, m := range cyc {
			if d := t.PathLength(m) - (payloadBits + 2); d > extra {
				extra = d
			}
		}
	}
	if extra < 0 {
		return 0
	}
	return extra
}
