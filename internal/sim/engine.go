// Package sim simulates message delivery on a fat-tree at two granularities.
//
// The delivery-cycle engine drives the actual switching hardware of Section
// II: during a cycle, every pending message snakes from its source leaf up to
// its least common ancestor and back down, competing for channel wires at
// each node's concentrator switches; messages that lose a concentrator port
// are dropped (congestion), negatively acknowledged, and retried in a later
// cycle. Running an off-line schedule (Section III) through the engine with
// ideal concentrators delivers every cycle's messages without loss — the
// integration of Theorem 1 with the Fig. 3 node design.
//
// The bit-serial timing model (Fig. 2) accounts the clock ticks a delivery
// cycle takes: messages establish paths leading-bit-first, address bits are
// stripped one per switch, and the payload follows, so a cycle lasts
// O(lg n + payload) ticks.
//
// # Parallel delivery cycles
//
// The engine has two interchangeable cycle implementations. The serial path
// (Engine.Run, and Engine.RunCycle on a one-worker engine) visits the ~n
// switches of a cycle one by one — it is the reference implementation, a
// direct transcription of the hardware's behavior. The parallel path
// (Engine.RunParallel, Engine.RunCyclesParallel, and Engine.RunCycle on a
// multi-worker engine) exploits the same independence the parallel scheduler
// does: within one sweep, the switches of a tree level touch disjoint
// messages and disjoint channels, so each level is fanned out over a bounded
// worker pool (internal/par) and the per-switch results are merged in node
// order.
//
// The parallel path is bit-identical to the serial path for any worker
// count. Contention winners are decided by per-switch request order, which
// both paths derive from message index order; and every source of randomness
// — partial-concentrator wiring and transient-fault (loss) injection — draws
// from a per-switch RNG stream seeded deterministically from (seed, node) at
// construction, consumed by exactly one worker per sweep, so loss injection
// and partial-concentrator behavior are reproducible regardless of how the
// switches are distributed over workers. The equivalence tests in this
// package prove the guarantee across worker counts, switch kinds, and fault
// rates.
package sim

import (
	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/par"
)

// Options configures optional engine behavior.
type Options struct {
	// Workers bounds the concurrency of the parallel delivery-cycle path:
	// the switches of each tree level are fanned out over at most Workers
	// goroutines. 0 means runtime.GOMAXPROCS(0). 1 pins the engine to the
	// serial reference path (RunCycle routes switches one by one). The
	// delivered messages, drop counts, and wire assignments are identical
	// for every value — workers only change wall-clock time.
	Workers int
}

// Engine simulates delivery cycles on one fat-tree with persistent switch
// hardware (the concentrator graphs are built once, as in a real machine).
type Engine struct {
	tree     *core.FatTree
	switches []*concentrator.Switch // indexed by node 1..n-1 (internal nodes)
	pool     *par.Pool              // bounds the parallel cycle path
}

// New builds the engine: one switch per internal node, with concentrators of
// the given kind (ideal per Section III, or Pippenger-style partial per
// Section IV). seed feeds the partial constructions. The engine uses up to
// GOMAXPROCS workers for its delivery cycles; see NewWithOptions to pin the
// worker count.
func New(t *core.FatTree, kind concentrator.Kind, seed int64) *Engine {
	return NewWithOptions(t, kind, seed, Options{})
}

// NewWithOptions is New with explicit Options.
func NewWithOptions(t *core.FatTree, kind concentrator.Kind, seed int64, opts Options) *Engine {
	e := &Engine{
		tree:     t,
		switches: make([]*concentrator.Switch, t.Processors()),
		pool:     par.New(opts.Workers),
	}
	for v := 1; v < t.Processors(); v++ {
		capParent := t.Capacity(core.Channel{Node: v, Dir: core.Up})
		capChild := t.Capacity(core.Channel{Node: 2 * v, Dir: core.Up})
		e.switches[v] = concentrator.NewSwitch(capParent, capChild, kind, seed+int64(v))
	}
	return e
}

// Tree returns the fat-tree the engine simulates.
func (e *Engine) Tree() *core.FatTree { return e.tree }

// Workers returns the engine's worker bound for parallel delivery cycles.
func (e *Engine) Workers() int { return e.pool.Workers() }

// InjectLoss adds a transient-fault model to every switch: each routed
// message is independently corrupted with the given rate and must be retried
// (Section VII's fault-tolerance concern, absorbed by the Section II
// acknowledgment protocol). Each switch draws from its own RNG stream seeded
// by (seed, node), so fault patterns are reproducible on the parallel cycle
// path for any worker count.
func (e *Engine) InjectLoss(rate float64, seed int64) {
	for v := 1; v < e.tree.Processors(); v++ {
		e.switches[v].InjectLoss(rate, seed+int64(3*v))
	}
}

// CycleResult reports one delivery cycle.
type CycleResult struct {
	Delivered int // messages that reached their destination leaf channel
	Dropped   int // messages dropped at a congested or unlucky concentrator
	Deferred  int // messages that could not even inject at their source leaf
}

// flight tracks one message inside a cycle: its state, the node beneath the
// channel whose wire it currently holds, and the wire index.
type flight struct {
	msg   core.Message
	state int // flightUp, flightDown, flightDone, flightLost
	node  int // node beneath the current channel (leaf after injection)
	wire  int // wire held in the current channel
	lca   int
	hist  []int // wires assigned along the path, in path order
}

const (
	flightPending = iota
	flightUp
	flightDown
	flightDone
	flightLost
)

// RunCycle attempts to deliver all of pending in a single delivery cycle and
// returns which were delivered (parallel to pending) plus counts. Messages
// not delivered must be retried by the caller in a later cycle — the
// acknowledgment protocol of Section II. Engines with more than one worker
// route each tree level's switches concurrently; the result is bit-identical
// to the serial path.
func (e *Engine) RunCycle(pending core.MessageSet) ([]bool, CycleResult) {
	delivered, res, _ := e.runCycleAuto(pending)
	return delivered, res
}

// runCycleAuto dispatches between the serial reference path and the
// level-sharded parallel path on the engine's worker bound.
func (e *Engine) runCycleAuto(pending core.MessageSet) ([]bool, CycleResult, [][]int) {
	if e.pool.Workers() > 1 {
		return e.runCycleParallelWithHistory(pending)
	}
	return e.runCycleWithHistory(pending)
}

// inject starts a delivery cycle: each source leaf offers its up channel's
// wires to its pending messages in order; the surplus is deferred to a later
// cycle (the processor buffers them, per Section II). Inputs from the
// external world inject into the root down channel; outputs carry the
// sentinel LCA 0 ("above the root") so the upward sweep forwards them through
// every switch and out the root channel.
func (e *Engine) inject(pending core.MessageSet) ([]flight, CycleResult) {
	t := e.tree
	flights := make([]flight, len(pending))
	var res CycleResult

	injected := make(map[int]int) // leaf node -> wires used
	rootInjected := 0             // root down-channel wires used by inputs
	for i, m := range pending {
		if m.Src == core.External {
			capRoot := t.Capacity(core.Channel{Node: 1, Dir: core.Down})
			if rootInjected >= capRoot {
				flights[i] = flight{msg: m, state: flightLost}
				res.Deferred++
				continue
			}
			flights[i] = flight{
				msg: m, state: flightDown, node: 1, wire: rootInjected,
				hist: []int{rootInjected},
			}
			rootInjected++
			continue
		}
		leaf := t.Leaf(m.Src)
		capLeaf := t.Capacity(core.Channel{Node: leaf, Dir: core.Up})
		if injected[leaf] >= capLeaf {
			flights[i] = flight{msg: m, state: flightLost}
			res.Deferred++
			continue
		}
		lca := 0 // sentinel: the message exits through the root interface
		if m.Dst != core.External {
			lca = t.LCA(m.Src, m.Dst)
		}
		flights[i] = flight{
			msg: m, state: flightUp, node: leaf, wire: injected[leaf],
			lca:  lca,
			hist: []int{injected[leaf]},
		}
		injected[leaf]++
	}
	return flights, res
}

// collect finishes a delivery cycle: delivered flags, the per-message wire
// histories, and the delivered count.
func collect(pending core.MessageSet, flights []flight, res *CycleResult) ([]bool, [][]int) {
	delivered := make([]bool, len(pending))
	hist := make([][]int, len(pending))
	for i := range flights {
		if flights[i].state == flightDone {
			delivered[i] = true
			res.Delivered++
			hist[i] = flights[i].hist
		}
	}
	return delivered, hist
}

// runCycleWithHistory is the serial reference implementation of a delivery
// cycle: RunCycle plus, for each message, the sequence of wires it was
// assigned along its path (path order: leaf up channel first). The histories
// feed the off-line settings compiler.
func (e *Engine) runCycleWithHistory(pending core.MessageSet) ([]bool, CycleResult, [][]int) {
	t := e.tree
	leafLevel := t.Levels()
	flights, res := e.inject(pending)

	// Upward sweep: nodes from the leaf parents toward the root route their
	// parent-bound traffic. A message bound for a higher LCA requests the
	// ToParent concentrator; one whose LCA is this node keeps its child-side
	// wire and turns during the downward sweep.
	for level := leafLevel - 1; level >= 0; level-- {
		first := 1 << uint(level)
		for v := first; v < 2*first; v++ {
			e.routeNode(v, flights, true, &res)
		}
	}

	// Downward sweep: nodes from the root toward the leaves route their
	// child-bound traffic — turning messages (LCA here) plus messages
	// descending from the parent.
	for level := 0; level < leafLevel; level++ {
		first := 1 << uint(level)
		for v := first; v < 2*first; v++ {
			e.routeNode(v, flights, false, &res)
		}
	}

	delivered, hist := collect(pending, flights, &res)
	return delivered, res, hist
}

// routeNode routes one node's traffic for one sweep by scanning every flight
// for the ones this node owns. The parallel path computes the same ownership
// by bucketing (see parallel.go) and shares routeGathered, so both paths
// contest each switch with identical request lists.
func (e *Engine) routeNode(v int, flights []flight, upSweep bool, res *CycleResult) {
	var who []int
	for i := range flights {
		f := &flights[i]
		if upSweep {
			// Message ascending through v: it holds a wire in the up channel
			// above one of v's children and its LCA is strictly above v.
			if f.state != flightUp || f.node>>1 != v || f.lca == v {
				continue
			}
			who = append(who, i)
			continue
		}
		// Downward sweep: the message either turns at v (its LCA is v, and it
		// still holds a child-side up wire) or descends through v (it holds
		// the parent-side down wire above v).
		if (f.state == flightUp && f.lca == v) || (f.state == flightDown && f.node == v) {
			who = append(who, i)
		}
	}
	e.routeGathered(v, flights, who, upSweep, res)
}

// routeGathered contests node v's concentrators with the flights in who (in
// order) and applies the wire assignments. In the upward sweep only the
// ToParent output is contested; in the downward sweep the two child outputs
// are. It touches only the listed flights, switch v, and res.Dropped, so
// calls for distinct nodes of one level are independent.
func (e *Engine) routeGathered(v int, flights []flight, who []int, upSweep bool, res *CycleResult) {
	if len(who) == 0 {
		return
	}
	t := e.tree
	leafLevel := t.Levels()
	reqs := make([]concentrator.Request, 0, len(who))

	for _, i := range who {
		f := &flights[i]
		m := f.msg
		if upSweep {
			in := concentrator.Left
			if f.node == 2*v+1 {
				in = concentrator.Right
			}
			reqs = append(reqs, concentrator.Request{In: in, InWire: f.wire, Out: concentrator.Parent})
			continue
		}
		var in concentrator.Port
		if f.state == flightUp { // turning at its LCA, still on a child-side wire
			in = concentrator.Left
			if f.node == 2*v+1 {
				in = concentrator.Right
			}
		} else { // descending on the parent-side down wire
			in = concentrator.Parent
		}
		out := concentrator.Left
		if t.Contains(2*v+1, m.Dst) {
			out = concentrator.Right
		}
		reqs = append(reqs, concentrator.Request{In: in, InWire: f.wire, Out: out})
	}

	outWires, _ := e.switches[v].Route(reqs)
	// Hardware invariant: a concentrator never assigns more wires to a
	// channel than the channel has, and never the same wire twice. The
	// checks are cheap and guard the whole delivery pipeline.
	usedUp := make(map[int]bool)
	usedDown := [2]map[int]bool{make(map[int]bool), make(map[int]bool)}
	for j, i := range who {
		f := &flights[i]
		if outWires[j] < 0 {
			f.state = flightLost
			res.Dropped++
			continue
		}
		switch reqs[j].Out {
		case concentrator.Parent:
			capUp := t.Capacity(core.Channel{Node: v, Dir: core.Up})
			if outWires[j] >= capUp || usedUp[outWires[j]] {
				panic("sim: up-channel wire oversubscribed (switch bug)")
			}
			usedUp[outWires[j]] = true
		case concentrator.Left, concentrator.Right:
			side := 0
			child := 2 * v
			if reqs[j].Out == concentrator.Right {
				side = 1
				child = 2*v + 1
			}
			capDown := t.Capacity(core.Channel{Node: child, Dir: core.Down})
			if outWires[j] >= capDown || usedDown[side][outWires[j]] {
				panic("sim: down-channel wire oversubscribed (switch bug)")
			}
			usedDown[side][outWires[j]] = true
		}
		f.wire = outWires[j]
		f.hist = append(f.hist, outWires[j])
		if upSweep {
			f.state = flightUp
			f.node = v // now holds a wire in the up channel above v
			if v == 1 && f.msg.Dst == core.External {
				// The root up channel is the external interface: delivered.
				f.state = flightDone
			}
			continue
		}
		// Descending: the message now holds a wire in the down channel above
		// the chosen child.
		child := 2 * v
		if reqs[j].Out == concentrator.Right {
			child = 2*v + 1
		}
		f.node = child
		f.state = flightDown
		if t.Level(child) == leafLevel {
			f.state = flightDone
		}
	}
}
