// Package sim simulates message delivery on a fat-tree at two granularities.
//
// The delivery-cycle engine drives the actual switching hardware of Section
// II: during a cycle, every pending message snakes from its source leaf up to
// its least common ancestor and back down, competing for channel wires at
// each node's concentrator switches; messages that lose a concentrator port
// are dropped (congestion), negatively acknowledged, and retried in a later
// cycle. Running an off-line schedule (Section III) through the engine with
// ideal concentrators delivers every cycle's messages without loss — the
// integration of Theorem 1 with the Fig. 3 node design.
//
// The bit-serial timing model (Fig. 2) accounts the clock ticks a delivery
// cycle takes: messages establish paths leading-bit-first, address bits are
// stripped one per switch, and the payload follows, so a cycle lasts
// O(lg n + payload) ticks.
//
// # The allocation-free data plane
//
// Both cycle paths share one bucketed data plane that does O(flights × path
// length) work per cycle with zero steady-state heap allocation: each sweep
// step touches every in-flight message exactly once to bucket it under its
// owning switch (replacing the historical per-switch scan over all flights),
// and all transient state — the flight table, the per-leaf injection
// counters, the per-switch request lists and wire guards, and the wire
// histories — lives in a per-engine scratch arena that is reused from cycle
// to cycle. The first cycle after construction (or after a growth in problem
// size) warms the arena; subsequent cycles allocate nothing. Channel
// capacities are memoized into a flat array indexed by node id at
// construction, so the sweep does integer arithmetic only — no map probes
// through capacity overrides, and no tree walks (the downward steering
// decision reads one bit of the destination leaf index). See DESIGN.md
// "Scratch-arena ownership" for the reuse rules.
//
// # Parallel delivery cycles
//
// The engine has two interchangeable cycle executions of that one data
// plane. The serial path (Engine.Run, and Engine.RunCycle on a one-worker
// engine) routes the buckets of each tree level in node order on the calling
// goroutine. The parallel path (Engine.RunParallel, Engine.RunCyclesParallel,
// and Engine.RunCycle on a multi-worker engine) exploits the independence of
// a level's switches — within one sweep they touch disjoint messages,
// disjoint channels, and disjoint scratch — to fan the buckets out over a
// bounded worker pool (internal/par), merging per-switch drop counts in node
// order.
//
// The parallel path is bit-identical to the serial path for any worker
// count. Contention winners are decided by per-switch request order, which
// both paths derive from message index order; and every source of randomness
// — partial-concentrator wiring and transient-fault (loss) injection — draws
// from a per-switch RNG stream seeded deterministically from (seed, node) at
// construction, consumed by exactly one worker per sweep, so loss injection
// and partial-concentrator behavior are reproducible regardless of how the
// switches are distributed over workers. The equivalence tests in this
// package prove the guarantee across worker counts, switch kinds, fault
// rates, and engine reuse.
package sim

import (
	"math/bits"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/obsv"
	"fattree/internal/par"
)

// Options configures optional engine behavior.
type Options struct {
	// Workers bounds the concurrency of the parallel delivery-cycle path:
	// the switches of each tree level are fanned out over at most Workers
	// goroutines. 0 means runtime.GOMAXPROCS(0). 1 pins the engine to the
	// serial reference path (RunCycle routes switches one by one). The
	// delivered messages, drop counts, and wire assignments are identical
	// for every value — workers only change wall-clock time.
	Workers int

	// Observer, when non-nil, attaches the observability layer (internal/
	// obsv) to the engine: per-channel and per-switch counters plus the
	// optional event trace, recorded at the deterministic serial merge points
	// of the cycle data plane. A nil Observer costs one pointer compare per
	// merge point and nothing else. Equivalent to calling SetObserver.
	Observer *obsv.Observer
}

// Engine simulates delivery cycles on one fat-tree with persistent switch
// hardware (the concentrator graphs are built once, as in a real machine).
//
// An Engine owns a scratch arena that is reused across cycles, so a single
// Engine must not run cycles from multiple goroutines concurrently, and the
// slices returned by RunCycle and friends are valid only until the engine's
// next cycle. Reusing one engine across many cycles and message sets is the
// intended mode and produces results identical to a fresh engine (the
// engine-reuse equivalence tests pin this).
type Engine struct {
	tree     core.Topology
	switches []*concentrator.Switch // indexed by node 1..n-1 (internal nodes)
	pool     *par.Pool              // bounds the parallel cycle path

	// caps memoizes the channel capacity above every node (both directions
	// share one capacity), indexed by heap node id, so the cycle data plane
	// never consults the tree's override map. Snapshotted at construction,
	// consistent with the switch hardware built from the same values.
	caps []int

	// obs is the attached observability layer, nil when disabled. It is a
	// concrete pointer (never an interface) so the disabled hot path is a
	// single nil compare with no interface-conversion allocation; see
	// observe.go for the hook points and the determinism argument.
	obs *obsv.Observer

	scr scratch

	// levelWorker is the persistent fan-out closure handed to the worker
	// pool each sweep step; the step's parameters travel in scratch fields
	// (curFirst, curUp) so steady-state cycles allocate no closures.
	levelWorker func(k int)

	// stream is non-nil when the engine simulates an ImplicitFatTree: the
	// subtree-sharded streaming data plane of stream.go replaces the dense
	// per-node state above (switches, caps, scr.node, scr.buckets, the
	// injection counters), whose slices are then left nil. Memory becomes
	// O(messages × path length + shards), independent of n.
	stream *streamState

	// kary is non-nil when the engine simulates a KaryFatTree: the level-
	// table data plane of kary.go replaces the switch objects and per-node
	// scratch (switches and scr.node stay nil) while reusing the bucketed
	// sweep machinery.
	kary *karyState
}

// scratch is the engine's reusable per-cycle arena. Every slice grows to the
// high-water mark of the scenarios routed so far and is then reused without
// allocation; see DESIGN.md "Scratch-arena ownership".
type scratch struct {
	flights   []flight
	delivered []bool
	histArena []int // flat wire-history storage; flights hold offsets into it

	// Per-processor injection counters, epoch-stamped so they need no
	// clearing between cycles.
	injUsed  []int
	injStamp []int64
	epoch    int64

	// Per-level bucketing state: buckets[v-first] lists the flight indices
	// switch v owns this sweep step in message-index order; nodes lists the
	// non-empty buckets in first-touch (= message-index) order; dropped
	// collects per-switch drop counts for the deterministic merge. curFirst
	// and curUp parameterize the current sweep step for levelWorker.
	buckets  [][]int
	nodes    []int
	dropped  []int
	curFirst int
	curUp    bool

	// Per-switch scratch, indexed by node 1..n-1. Distinct switches are
	// routed by distinct workers, so slots never race.
	node []nodeScratch

	// Ping-pong pending buffers for the retry loops.
	pendA, pendB core.MessageSet

	// Ping-pong first-offer cycle stamps parallel to pendA/pendB, plus the
	// per-cycle latency batch handed to the observer. Touched only when an
	// observer is attached, so the unobserved retry loops stay allocation-
	// free and identical.
	ageA, ageB, latBuf []int64
}

// nodeScratch is the per-switch slice of the arena: the request list handed
// to the concentrators and the epoch-stamped wire guards that check the
// hardware invariant (no channel wire assigned twice in one sweep).
type nodeScratch struct {
	reqs      []concentrator.Request
	upStamp   []int64
	downStamp [2][]int64
	gen       int64
}

// New builds the engine: one switch per internal node, with concentrators of
// the given kind (ideal per Section III, or Pippenger-style partial per
// Section IV). seed feeds the partial constructions. The engine uses up to
// GOMAXPROCS workers for its delivery cycles; see NewWithOptions to pin the
// worker count.
func New(t core.Topology, kind concentrator.Kind, seed int64) *Engine {
	return NewWithOptions(t, kind, seed, Options{})
}

// NewWithOptions is New with explicit Options. An ImplicitFatTree selects the
// streaming data plane (stream.go), whose memory is independent of the
// processor count; a KaryFatTree selects the level-table plane (kary.go),
// which routes with inline ideal concentrators; any other Topology gets the
// dense per-node engine.
func NewWithOptions(t core.Topology, kind concentrator.Kind, seed int64, opts Options) *Engine {
	if imp, ok := t.(*core.ImplicitFatTree); ok {
		return newStreamEngine(imp, kind, seed, opts)
	}
	if kt, ok := t.(*core.KaryFatTree); ok {
		return newKaryEngine(kt, kind, seed, opts)
	}
	e := &Engine{
		tree:     t,
		switches: make([]*concentrator.Switch, t.Processors()),
		pool:     par.New(opts.Workers),
		caps:     core.CapTableOf(t),
	}
	n := t.Processors()
	e.scr.node = make([]nodeScratch, n)
	for v := 1; v < n; v++ {
		capParent := e.caps[v]
		capChild := e.caps[2*v]
		e.switches[v] = concentrator.NewSwitch(capParent, capChild, kind, seed+int64(v))
		e.scr.node[v] = nodeScratch{
			reqs:      make([]concentrator.Request, 0, capParent+2*capChild),
			upStamp:   make([]int64, capParent),
			downStamp: [2][]int64{make([]int64, capChild), make([]int64, capChild)},
		}
	}
	e.scr.injUsed = make([]int, n)
	e.scr.injStamp = make([]int64, n)
	maxNodes := 1
	if lv := t.Levels(); lv > 1 {
		maxNodes = 1 << uint(lv-1)
	}
	e.scr.buckets = make([][]int, maxNodes)
	e.scr.nodes = make([]int, 0, maxNodes)
	e.scr.dropped = make([]int, maxNodes)
	e.levelWorker = func(k int) {
		scr := &e.scr
		v := scr.nodes[k]
		var local CycleResult
		e.routeGathered(v, scr.flights, scr.buckets[v-scr.curFirst], scr.curUp, &local)
		scr.dropped[v-scr.curFirst] = local.Dropped
	}
	if opts.Observer != nil {
		e.SetObserver(opts.Observer)
	}
	return e
}

// Tree returns the fat-tree the engine simulates.
func (e *Engine) Tree() core.Topology { return e.tree }

// Workers returns the engine's worker bound for parallel delivery cycles.
func (e *Engine) Workers() int { return e.pool.Workers() }

// InjectLoss adds a transient-fault model to every switch: each routed
// message is independently corrupted with the given rate and must be retried
// (Section VII's fault-tolerance concern, absorbed by the Section II
// acknowledgment protocol). Each switch draws from its own RNG stream seeded
// by (seed, node), so fault patterns are reproducible on the parallel cycle
// path for any worker count.
func (e *Engine) InjectLoss(rate float64, seed int64) {
	if e.stream != nil {
		e.stream.injectLoss(rate, seed)
		return
	}
	if e.kary != nil {
		panic("sim: loss injection is not supported on k-ary topologies (ideal concentrators only)")
	}
	for v := 1; v < e.tree.Processors(); v++ {
		e.switches[v].InjectLoss(rate, seed+int64(3*v))
	}
}

// CycleResult reports one delivery cycle.
type CycleResult struct {
	Delivered int // messages that reached their destination leaf channel
	Dropped   int // messages dropped at a congested or unlucky concentrator
	Deferred  int // messages that could not even inject at their source leaf
}

// flight tracks one message inside a cycle: its state, the node beneath the
// channel whose wire it currently holds, the wire index, and its slice of
// the engine's flat wire-history arena.
type flight struct {
	msg     core.Message
	state   int // flightUp, flightDown, flightDone, flightLost
	node    int // node beneath the current channel (leaf after injection)
	wire    int // wire held in the current channel
	lca     int
	dstLeaf int // heap index of the destination leaf (0 when Dst is External)
	histOff int // offset of this flight's wire history in scr.histArena
	histLen int // wires recorded so far (path order)
}

const (
	flightPending = iota
	flightUp
	flightDown
	flightDone
	flightLost
)

// RunCycle attempts to deliver all of pending in a single delivery cycle and
// returns which were delivered (parallel to pending) plus counts. Messages
// not delivered must be retried by the caller in a later cycle — the
// acknowledgment protocol of Section II. Engines with more than one worker
// route each tree level's switches concurrently; the result is bit-identical
// to the serial path.
//
// The returned slice is owned by the engine's scratch arena and valid only
// until the next cycle on this engine; copy it to retain it.
func (e *Engine) RunCycle(pending core.MessageSet) ([]bool, CycleResult) {
	if e.pool.Workers() > 1 {
		return e.runCycle(pending, e.pool)
	}
	return e.runCycle(pending, nil)
}

// runCycleAuto dispatches between the serial execution and the level-sharded
// parallel execution on the engine's worker bound.
func (e *Engine) runCycleAuto(pending core.MessageSet) ([]bool, CycleResult) {
	return e.RunCycle(pending)
}

// growInts returns s resized to n entries, reusing its backing array when
// the capacity suffices and preserving existing contents on growth.
func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]int, n, n+n/2)
	copy(out, s)
	return out
}

// growInt64s is growInts for int64 slices (the latency age stamps).
func growInt64s(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]int64, n, n+n/2)
	copy(out, s)
	return out
}

// inject starts a delivery cycle: each source leaf offers its up channel's
// wires to its pending messages in order; the surplus is deferred to a later
// cycle (the processor buffers them, per Section II). Inputs from the
// external world inject into the root down channel; outputs carry the
// sentinel LCA 0 ("above the root") so the upward sweep forwards them through
// every switch and out the root channel. Each admitted flight reserves its
// exact path length in the wire-history arena.
//
//ftlint:hotpath
func (e *Engine) inject(pending core.MessageSet) ([]flight, CycleResult) {
	t := e.tree
	scr := &e.scr
	scr.epoch++
	if cap(scr.flights) < len(pending) {
		scr.flights = make([]flight, len(pending), len(pending)+len(pending)/2)
	}
	flights := scr.flights[:len(pending)]
	scr.flights = flights
	var res CycleResult

	levels := t.Levels()
	arenaLen := 0
	rootInjected := 0 // root down-channel wires used by inputs
	for i, m := range pending {
		if m.Src == core.External {
			if rootInjected >= e.caps[1] {
				flights[i] = flight{msg: m, state: flightLost}
				res.Deferred++
				continue
			}
			off := arenaLen
			arenaLen += levels + 1
			scr.histArena = growInts(scr.histArena, arenaLen)
			flights[i] = flight{
				msg: m, state: flightDown, node: 1, wire: rootInjected,
				dstLeaf: t.Leaf(m.Dst),
				histOff: off, histLen: 1,
			}
			scr.histArena[off] = rootInjected
			rootInjected++
			continue
		}
		leaf := t.Leaf(m.Src)
		used := 0
		if scr.injStamp[m.Src] == scr.epoch {
			used = scr.injUsed[m.Src]
		}
		if used >= e.caps[leaf] {
			flights[i] = flight{msg: m, state: flightLost}
			res.Deferred++
			continue
		}
		lca := 0 // sentinel: the message exits through the root interface
		dstLeaf := 0
		pathLen := levels + 1
		if m.Dst != core.External {
			lca = t.LCA(m.Src, m.Dst)
			dstLeaf = t.Leaf(m.Dst)
			lcaLevel := bits.Len(uint(lca)) - 1
			if e.kary != nil {
				lcaLevel = e.kary.t.Level(lca)
			}
			pathLen = 2 * (levels - lcaLevel)
		}
		off := arenaLen
		arenaLen += pathLen
		scr.histArena = growInts(scr.histArena, arenaLen)
		flights[i] = flight{
			msg: m, state: flightUp, node: leaf, wire: used,
			lca: lca, dstLeaf: dstLeaf,
			histOff: off, histLen: 1,
		}
		scr.histArena[off] = used
		scr.injStamp[m.Src] = scr.epoch
		scr.injUsed[m.Src] = used + 1
	}
	return flights, res
}

// collect finishes a delivery cycle: delivered flags (engine-owned scratch)
// and the delivered count.
//
//ftlint:hotpath
func (e *Engine) collect(pending core.MessageSet, flights []flight, res *CycleResult) []bool {
	scr := &e.scr
	if cap(scr.delivered) < len(pending) {
		scr.delivered = make([]bool, len(pending), len(pending)+len(pending)/2)
	}
	delivered := scr.delivered[:len(pending)]
	scr.delivered = delivered
	for i := range flights {
		done := flights[i].state == flightDone
		delivered[i] = done
		if done {
			res.Delivered++
		}
	}
	return delivered
}

// runCycle is the single delivery-cycle data plane shared by the serial and
// parallel paths: inject, bucketed upward sweep, bucketed downward sweep,
// collect. A nil pool routes each level's buckets in node order on the
// calling goroutine (the serial reference execution); a pool fans them out
// over its workers with a deterministic node-order merge. The two executions
// are bit-identical because every bucket is built in message-index order
// before the fan-out and every switch is contested by exactly one worker.
//
//ftlint:hotpath
func (e *Engine) runCycle(pending core.MessageSet, pool *par.Pool) ([]bool, CycleResult) {
	if e.stream != nil {
		return e.runCycleStream(pending, pool)
	}
	if e.kary != nil {
		return e.runCycleKary(pending, pool)
	}
	t := e.tree
	scr := &e.scr
	leafLevel := t.Levels()
	flights, res := e.inject(pending)
	if e.obs != nil {
		e.observeInject(pending, flights)
	}
	scr.nodes = scr.nodes[:0]

	// Upward sweep, leaf parents toward the root: a message ascending
	// through v holds a wire in the up channel above one of v's children
	// and its LCA is strictly above v.
	for level := leafLevel - 1; level >= 0; level-- {
		first := 1 << uint(level)
		for i := range flights {
			f := &flights[i]
			if f.state != flightUp || f.lca == f.node>>1 {
				continue
			}
			e.own(first, f.node>>1, i)
		}
		e.routeLevel(pool, first, true, &res)
	}

	// Downward sweep, root toward the leaves: a message either turns at v
	// (its LCA is v, and it still holds a child-side up wire) or descends
	// through v (it holds the parent-side down wire above v).
	for level := 0; level < leafLevel; level++ {
		first := 1 << uint(level)
		for i := range flights {
			f := &flights[i]
			switch f.state {
			case flightUp: // waiting to turn at its LCA
				e.own(first, f.lca, i)
			case flightDown: // holds the down wire above f.node
				e.own(first, f.node, i)
			}
		}
		e.routeLevel(pool, first, false, &res)
	}

	delivered := e.collect(pending, flights, &res)
	if e.obs != nil {
		e.obs.CycleEnd(res.Delivered, res.Dropped, res.Deferred)
	}
	return delivered, res
}

// own buckets flight i under switch v if v belongs to the sweep level whose
// first node is first, recording the first touch of each bucket in nodes.
//
//ftlint:hotpath
func (e *Engine) own(first, v, i int) {
	scr := &e.scr
	if v >= first && v < 2*first {
		if len(scr.buckets[v-first]) == 0 {
			scr.nodes = append(scr.nodes, v)
		}
		scr.buckets[v-first] = append(scr.buckets[v-first], i)
	}
}

// routeLevel contests one sweep step's non-empty switches — inline in node
// order on a nil pool, fanned out over the pool's workers otherwise — then
// merges per-switch drop counts in node order and resets the buckets.
//
//ftlint:hotpath
func (e *Engine) routeLevel(pool *par.Pool, first int, upSweep bool, res *CycleResult) {
	scr := &e.scr
	scr.curFirst, scr.curUp = first, upSweep
	//ftlint:ignore callgraphhotalloc parallel fan-out spawns worker closures by design; the serial path (nil pool) returns before allocating.
	pool.ForEach(len(scr.nodes), e.levelWorker)
	if e.obs != nil {
		// Observation happens here, after the fan-out has joined and before
		// the buckets are reset — a serial point with a deterministic order.
		e.observeLevel(first, upSweep)
	}
	// Deterministic merge in node order. Only drops occur mid-sweep
	// (delivery and deferral are counted at collect/inject time).
	for _, v := range scr.nodes {
		res.Dropped += scr.dropped[v-first]
		scr.buckets[v-first] = scr.buckets[v-first][:0]
	}
	scr.nodes = scr.nodes[:0]
}

// routeGathered contests node v's concentrators with the flights in who (in
// order) and applies the wire assignments. In the upward sweep only the
// ToParent output is contested; in the downward sweep the two child outputs
// are. It touches only the listed flights, switch v, v's scratch slot, and
// res.Dropped, so calls for distinct nodes of one level are independent.
//
//ftlint:hotpath
func (e *Engine) routeGathered(v int, flights []flight, who []int, upSweep bool, res *CycleResult) {
	if len(who) == 0 {
		return
	}
	leafLevel := e.tree.Levels()
	vLevel := bits.Len(uint(v)) - 1
	ns := &e.scr.node[v]
	reqs := ns.reqs[:0]

	for _, i := range who {
		f := &flights[i]
		if upSweep {
			in := concentrator.Left
			if f.node == 2*v+1 {
				in = concentrator.Right
			}
			reqs = append(reqs, concentrator.Request{In: in, InWire: f.wire, Out: concentrator.Parent})
			continue
		}
		var in concentrator.Port
		if f.state == flightUp { // turning at its LCA, still on a child-side wire
			in = concentrator.Left
			if f.node == 2*v+1 {
				in = concentrator.Right
			}
		} else { // descending on the parent-side down wire
			in = concentrator.Parent
		}
		// Steer toward the destination leaf: the next node down is the
		// dstLeaf ancestor one level below v, and its low bit picks the side.
		out := concentrator.Left
		if (f.dstLeaf>>uint(leafLevel-vLevel-1))&1 == 1 {
			out = concentrator.Right
		}
		reqs = append(reqs, concentrator.Request{In: in, InWire: f.wire, Out: out})
	}
	ns.reqs = reqs

	outWires, _ := e.switches[v].Route(reqs)
	// Hardware invariant: a concentrator never assigns more wires to a
	// channel than the channel has, and never the same wire twice. The
	// epoch-stamped guards are cheap and protect the whole delivery
	// pipeline without per-sweep clearing.
	ns.gen++
	for j, i := range who {
		f := &flights[i]
		if outWires[j] < 0 {
			f.state = flightLost
			res.Dropped++
			continue
		}
		switch reqs[j].Out {
		case concentrator.Parent:
			if outWires[j] >= e.caps[v] || ns.upStamp[outWires[j]] == ns.gen {
				panic("sim: up-channel wire oversubscribed (switch bug)")
			}
			ns.upStamp[outWires[j]] = ns.gen
		case concentrator.Left, concentrator.Right:
			side := 0
			child := 2 * v
			if reqs[j].Out == concentrator.Right {
				side = 1
				child = 2*v + 1
			}
			if outWires[j] >= e.caps[child] || ns.downStamp[side][outWires[j]] == ns.gen {
				panic("sim: down-channel wire oversubscribed (switch bug)")
			}
			ns.downStamp[side][outWires[j]] = ns.gen
		}
		f.wire = outWires[j]
		e.scr.histArena[f.histOff+f.histLen] = outWires[j]
		f.histLen++
		if upSweep {
			f.state = flightUp
			f.node = v // now holds a wire in the up channel above v
			if v == 1 && f.msg.Dst == core.External {
				// The root up channel is the external interface: delivered.
				f.state = flightDone
			}
			continue
		}
		// Descending: the message now holds a wire in the down channel above
		// the chosen child.
		child := 2 * v
		if reqs[j].Out == concentrator.Right {
			child = 2*v + 1
		}
		f.node = child
		f.state = flightDown
		if vLevel+1 == leafLevel {
			f.state = flightDone
		}
	}
}

// histories materializes the per-message wire paths of the last cycle as
// freshly allocated slices safe to retain: hist[i] is message i's wire
// sequence in path order, nil unless it was delivered. Used by the settings
// compiler; the hot retry loops never materialize.
func (e *Engine) histories(flights []flight) [][]int {
	hist := make([][]int, len(flights))
	for i := range flights {
		f := &flights[i]
		if f.state != flightDone {
			continue
		}
		h := make([]int, f.histLen)
		copy(h, e.scr.histArena[f.histOff:f.histOff+f.histLen])
		hist[i] = h
	}
	return hist
}
