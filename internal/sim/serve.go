package sim

import (
	"fattree/internal/core"
	"fattree/internal/par"
)

// RunServe is the request-path twin of RunOnline: the same Section II retry
// protocol with identical Cycles/Delivered/Drops/Deferrals and identical
// observer effects for any worker count, but shaped for a serving daemon
// answering one request per call on a persistent engine. It differs from the
// experiment entry points in exactly two ways: the per-cycle delivery
// profile is not materialized (Stats.PerCycle stays nil — the only field of
// runLoop's result that grows per call), and the cycle implementation is
// dispatched once up front instead of through a per-call method value. Both
// differences exist so a warmed engine's whole request — validation, retry
// loop, latency batching, observer merges — performs zero heap allocations;
// cmd/ftserve calls RunServe once per /v1/route request on the tenant's
// persistent engine, and BenchmarkServeRoute pins the figure.
//
//ftlint:hotpath
func (e *Engine) RunServe(ms core.MessageSet) Stats {
	//ftlint:ignore callgraphhotalloc Validate allocates only on its error path, which feeds the panic below; the happy path is allocation-free.
	if err := ms.Validate(e.tree); err != nil {
		panic(err)
	}
	var pool *par.Pool
	if e.pool.Workers() > 1 {
		pool = e.pool
	}
	var stats Stats
	pending := append(e.scr.pendA[:0], ms...)
	next := e.scr.pendB[:0]
	// The ping-pong pairs live in pooled scratch even when unused (obs ==
	// nil), so every append below grows storage that survives across calls.
	ages := e.scr.ageA
	agesNext := e.scr.ageB[:0]
	lat := e.scr.latBuf[:0]
	if e.obs != nil {
		ages = growInt64s(e.scr.ageA, len(pending))
		for i := range ages {
			ages[i] = 0 // every message is first offered in cycle 0
		}
	}
	for len(pending) > 0 && stats.Cycles < maxCyclesDefault {
		if stats.Cycles > 0 && e.obs != nil {
			// Everything offered after the first cycle is a retry (the
			// Section II negative-acknowledgment protocol re-offering losers).
			e.obs.Retries(len(pending))
		}
		delivered, res := e.runCycle(pending, pool)
		stats.Cycles++
		stats.Delivered += res.Delivered
		stats.Drops += res.Dropped
		stats.Deferrals += res.Deferred
		next = next[:0]
		for i, ok := range delivered {
			if !ok {
				next = append(next, pending[i])
			}
		}
		if e.obs != nil {
			lat, agesNext = lat[:0], agesNext[:0]
			for i, ok := range delivered {
				if ok {
					lat = append(lat, int64(stats.Cycles)-ages[i])
				} else {
					agesNext = append(agesNext, ages[i])
				}
			}
			e.obs.Latencies(lat)
			ages, agesNext = agesNext, ages
		}
		if res.Delivered == 0 && len(next) == len(pending) {
			// No progress: with partial concentrators an unlucky matching can
			// stall identical retries forever; report and stop.
			break
		}
		pending, next = next, pending
	}
	e.scr.pendA, e.scr.pendB = pending[:0], next[:0]
	if e.obs != nil {
		e.scr.ageA, e.scr.ageB, e.scr.latBuf = ages[:0], agesNext[:0], lat[:0]
	}
	return stats
}
