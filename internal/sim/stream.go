package sim

import (
	"math/bits"
	"slices"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/par"
)

// This file is the streaming data plane selected when the engine simulates an
// ImplicitFatTree: the per-node arrays of the dense engine (switch objects,
// capacity table, bucket lists, injection counters) are replaced by a fixed
// set of subtree shards that stream the active flights level by level, so
// engine memory is O(messages × path length + shards) — independent of the
// processor count. A 2^20-endpoint network simulates in a few hundred
// megabytes where the dense engine would need per-node gigabytes.
//
// Equivalence with the dense engine is structural, not coincidental:
//
//   - Ownership: a flight is routed by exactly the node the dense own() rules
//     select; the shard owning that node is a pure function of its heap index
//     (shardOf), so the partition is identical for every worker count.
//   - Order: each shard sorts its (node, flight-index) keys, which makes
//     every node's request list ascend in message-index order — the same
//     order the dense buckets are built in. Ideal concentrators are
//     positional and the wire each request wins depends only on that order.
//   - Switches: ideal-kind routing is computed inline from the capacity
//     profile (Ideal and passThrough concentrators are stateless and
//     positional, see internal/concentrator); partial or lossy switches are
//     materialized lazily per contested node with the exact constructor and
//     seeds the dense engine uses — partial concentrators draw randomness
//     only at construction and Lossy draws once per routed message, so lazy
//     creation cannot perturb any RNG stream.
//   - Merges: drop counts, deferral counts, and observer events fan in at
//     serial points in ascending shard order (and message-index order inside
//     each node run), mirroring the dense merge discipline.
//
// Together these give bit-identical Stats, PerCycle vectors, wire histories,
// and observer counters for any worker count, serial included.

// streamShardBits bounds the shard count at 2^6 = 64: enough parallelism for
// the worker pool to load-balance, few enough that per-shard scratch stays
// cache-resident and the serial merge is trivial.
const streamShardBits = 6

// streamState is the engine state of the streaming data plane.
type streamState struct {
	e *Engine // back-pointer for the persistent worker closures

	n      int // processors
	levels int

	// Capacity profile snapshotted at construction (per-level table plus the
	// sparse override overlay), consistent with the dense engine's CapTable
	// snapshot: later SetChannelCapacity calls do not affect a built engine.
	levelCaps []int
	ov        map[int]int

	kind concentrator.Kind
	seed int64

	// Transient-fault model (InjectLoss), applied to lazily created switches.
	lossOn   bool
	lossRate float64
	lossSeed int64

	shardBits uint
	shards    []streamShard

	// Sweep-step parameters for the persistent worker closures; set serially
	// before each fan-out.
	curLevel   int
	curUp      bool
	curPending core.MessageSet

	// Per-chunk delivered tallies for the collect fan-out.
	chunkDelivered []int

	injectWorker  func(s int)
	routeWorker   func(s int)
	collectWorker func(chunk, lo, hi int)
}

// streamShard is one subtree shard: the scatter buffer of (node, flight)
// keys for the current sweep step, the per-node wire guards, and the lazy
// special-switch table. Distinct shards are touched by distinct workers; all
// fields merge serially.
type streamShard struct {
	// keys holds node<<32 | flightIndex, appended in message-index order by
	// the serial scatter and sorted by the shard worker, which groups each
	// node's flights contiguously with message-index order inside the group.
	keys []uint64

	// Per-step outcome tallies, merged and reset serially.
	drops    int
	deferred int

	// runs records each routed node's key range and counter deltas for the
	// observer replay; empty unless an observer is attached.
	runs []streamRun

	// special maps node -> materialized switch for non-ideal routing (partial
	// concentrators, injected loss). Ideal-kind engines without loss never
	// populate it.
	special map[int]*streamSwitch

	// reqs is the reusable request list for special-switch routing.
	reqs []concentrator.Request

	// Generation-stamped wire guards, grown to the largest capacity routed by
	// this shard. They check the same hardware invariant as the dense
	// nodeScratch guards: no channel wire assigned twice in one sweep.
	upStamp   []int64
	downStamp [2][]int64
	gen       int64
}

// streamRun is one node's routed key range within a shard's sorted keys.
type streamRun struct {
	v          int
	start, end int
	drops      int
	dRounds    int64
	dFaults    int64
}

// streamSwitch is a lazily materialized switch plus the cumulative-counter
// snapshots that turn its hardware counters into per-run deltas.
type streamSwitch struct {
	sw         *concentrator.Switch
	lastRounds int64
	lastFaults int64
}

// newStreamEngine builds the streaming engine for an implicit fat-tree.
func newStreamEngine(t *core.ImplicitFatTree, kind concentrator.Kind, seed int64, opts Options) *Engine {
	e := &Engine{
		tree: t,
		pool: par.New(opts.Workers),
	}
	shardBits := uint(streamShardBits)
	if lv := uint(t.Levels()); shardBits > lv {
		shardBits = lv
	}
	st := &streamState{
		e:              e,
		n:              t.Processors(),
		levels:         t.Levels(),
		levelCaps:      t.LevelCapTable(),
		kind:           kind,
		seed:           seed,
		shardBits:      shardBits,
		shards:         make([]streamShard, 1<<shardBits),
		chunkDelivered: make([]int, 1<<shardBits),
	}
	t.Overrides(func(node, cap int) {
		if st.ov == nil {
			st.ov = make(map[int]int)
		}
		st.ov[node] = cap
	})
	st.injectWorker = st.runInjectShard
	st.routeWorker = st.runRouteShard
	st.collectWorker = st.runCollectChunk
	e.stream = st
	if opts.Observer != nil {
		e.SetObserver(opts.Observer)
	}
	return e
}

// capAt returns the snapshotted capacity of the channel above node v:
// the override overlay, then the per-level profile.
//
//ftlint:hotpath
func (st *streamState) capAt(v int) int {
	if st.ov != nil {
		if c, ok := st.ov[v]; ok {
			return c
		}
	}
	return st.levelCaps[bits.Len(uint(v))-1]
}

// shardOf maps a heap node to its owning shard: nodes at or above the shard
// level own a slot apiece, deeper nodes belong to the shard of their ancestor
// at the shard level — the top-level-subtree partition the issue names. The
// mapping is a pure function of the node index, so the work partition is
// identical for every worker count.
//
//ftlint:hotpath
func (st *streamState) shardOf(v int) int {
	k := uint(bits.Len(uint(v))) - 1
	if k <= st.shardBits {
		return v - 1<<k
	}
	return int(uint(v)>>(k-st.shardBits)) - 1<<st.shardBits
}

// injectLoss records the transient-fault model and wraps the switches
// materialized so far; switches created later are wrapped at construction
// with the same per-node seeds the dense engine uses. Lossy concentrators
// draw randomness only per routed message, so wrapping order is immaterial.
func (st *streamState) injectLoss(rate float64, seed int64) {
	st.lossOn = true
	st.lossRate = rate
	st.lossSeed = seed
	for s := range st.shards {
		for v, ss := range st.shards[s].special {
			ss.sw.InjectLoss(rate, seed+int64(3*v))
		}
	}
}

// primeSpecials snapshots the cumulative hardware counters of every
// materialized switch so per-run deltas start at the observer attach point —
// the streaming analog of the dense PrimeSwitch loop.
func (st *streamState) primeSpecials() {
	for s := range st.shards {
		for _, ss := range st.shards[s].special {
			ss.lastRounds = ss.sw.MatchingRounds()
			ss.lastFaults = ss.sw.FaultDrops()
		}
	}
}

// switchFor returns node v's materialized switch, building it on first
// contest exactly as the dense constructor does: NewSwitch(capAbove(v),
// capAbove(leftChild), kind, seed+v), plus the loss wrapper when faults are
// injected. Partial concentrators draw their randomness at construction from
// their own (seed, node) stream, so lazy creation is equivalent to the dense
// engine's eager loop.
func (sh *streamShard) switchFor(st *streamState, v int) *streamSwitch {
	if ss, ok := sh.special[v]; ok {
		return ss
	}
	if sh.special == nil {
		//ftlint:ignore callgraphhotalloc one-time lazy table per shard: populated only for partial or lossy switches, never on the ideal steady state.
		sh.special = make(map[int]*streamSwitch)
	}
	//ftlint:ignore callgraphhotalloc one-time switch materialization on first contest; the ideal steady state never reaches it.
	sw := concentrator.NewSwitch(st.capAt(v), st.capAt(2*v), st.kind, st.seed+int64(v))
	if st.lossOn {
		sw.InjectLoss(st.lossRate, st.lossSeed+int64(3*v))
	}
	ss := &streamSwitch{sw: sw}
	sh.special[v] = ss
	return ss
}

// runCycleStream is the streaming delivery-cycle data plane: scatter-sorted
// injection, level-synchronized upward and downward sweeps over the shards,
// chunked collect. Serial when pool is nil, fanned out otherwise; the results
// are bit-identical either way (see the file comment).
//
//ftlint:hotpath
func (e *Engine) runCycleStream(pending core.MessageSet, pool *par.Pool) ([]bool, CycleResult) {
	st := e.stream
	st.curPending = pending
	flights, res := e.injectStream(pending, pool)
	if e.obs != nil {
		e.observeInject(pending, flights)
	}
	leafLevel := st.levels
	for level := leafLevel - 1; level >= 0; level-- {
		e.streamLevel(pool, level, true, &res)
	}
	for level := 0; level < leafLevel; level++ {
		e.streamLevel(pool, level, false, &res)
	}
	delivered := e.collectStream(pool, pending, flights, &res)
	if e.obs != nil {
		e.obs.CycleEnd(res.Delivered, res.Dropped, res.Deferred)
	}
	st.curPending = nil
	return delivered, res
}

// injectStream starts a delivery cycle without per-processor counters: a
// serial pass admits external inputs onto the root down channel in message
// order and scatters internal sources to their leaf's shard; each shard then
// sorts its keys, which lines up every leaf's messages in message-index order
// and makes "the first capAt(leaf) win, the rest defer" identical to the
// dense epoch-counter rule. A final serial pass lays out the wire-history
// arena in message-index order.
//
//ftlint:hotpath
func (e *Engine) injectStream(pending core.MessageSet, pool *par.Pool) ([]flight, CycleResult) {
	t := e.tree
	st := e.stream
	scr := &e.scr
	if cap(scr.flights) < len(pending) {
		scr.flights = make([]flight, len(pending), len(pending)+len(pending)/2)
	}
	flights := scr.flights[:len(pending)]
	scr.flights = flights
	var res CycleResult

	rootCap := st.capAt(1)
	rootInjected := 0
	for i, m := range pending {
		if m.Src == core.External {
			if rootInjected >= rootCap {
				flights[i] = flight{msg: m, state: flightLost}
				res.Deferred++
				continue
			}
			flights[i] = flight{
				msg: m, state: flightDown, node: 1, wire: rootInjected,
				dstLeaf: t.Leaf(m.Dst),
				histLen: 1,
			}
			rootInjected++
			continue
		}
		leaf := t.Leaf(m.Src)
		sh := &st.shards[st.shardOf(leaf)]
		sh.keys = append(sh.keys, uint64(leaf)<<32|uint64(uint32(i)))
	}

	//ftlint:ignore callgraphhotalloc parallel fan-out spawns worker closures by design; the serial path (nil pool) returns before allocating.
	pool.ForEach(len(st.shards), st.injectWorker)

	for s := range st.shards {
		sh := &st.shards[s]
		res.Deferred += sh.deferred
		sh.deferred = 0
		sh.keys = sh.keys[:0]
	}

	// Arena layout in message-index order: each admitted flight reserves its
	// exact path length and records its injection wire, matching the dense
	// inject loop's arena content bit for bit.
	levels := st.levels
	arenaLen := 0
	for i := range flights {
		f := &flights[i]
		if f.state == flightLost {
			continue
		}
		pathLen := levels + 1 // external input or output: leaf/root to root
		if f.lca != 0 {
			pathLen = 2 * (levels - (bits.Len(uint(f.lca)) - 1))
		}
		f.histOff = arenaLen
		arenaLen += pathLen
		scr.histArena = growInts(scr.histArena, arenaLen)
		scr.histArena[f.histOff] = f.wire
	}
	return flights, res
}

// runInjectShard admits one shard's scattered sources: sort brings each
// leaf's flights together in message-index order; the first capAt(leaf) of a
// leaf win successive wires of its up channel, the surplus defers.
//
//ftlint:hotpath
func (st *streamState) runInjectShard(s int) {
	sh := &st.shards[s]
	if len(sh.keys) == 0 {
		return
	}
	slices.Sort(sh.keys)
	flights := st.e.scr.flights
	pending := st.curPending
	n := st.n
	leaf, capLeaf, rank := -1, 0, 0
	for _, k := range sh.keys {
		v := int(k >> 32)
		i := int(uint32(k))
		if v != leaf {
			leaf, rank = v, 0
			capLeaf = st.capAt(v)
		}
		m := pending[i]
		if rank >= capLeaf {
			flights[i] = flight{msg: m, state: flightLost}
			sh.deferred++
			rank++
			continue
		}
		lca, dstLeaf := 0, 0 // sentinel: exits through the root interface
		if m.Dst != core.External {
			dstLeaf = n + m.Dst
			lca = v >> uint(bits.Len(uint(v^dstLeaf)))
		}
		flights[i] = flight{
			msg: m, state: flightUp, node: v, wire: rank,
			lca: lca, dstLeaf: dstLeaf, histLen: 1,
		}
		rank++
	}
}

// streamLevel runs one sweep step: a serial scatter applying the dense
// ownership rules to every flight in message-index order, the shard fan-out,
// and the serial merge (drops, then observer replay) in ascending shard
// order.
//
//ftlint:hotpath
func (e *Engine) streamLevel(pool *par.Pool, level int, upSweep bool, res *CycleResult) {
	st := e.stream
	flights := e.scr.flights
	first := 1 << uint(level)
	if upSweep {
		for i := range flights {
			f := &flights[i]
			if f.state != flightUp || f.lca == f.node>>1 {
				continue
			}
			v := f.node >> 1
			if v >= first && v < 2*first {
				sh := &st.shards[st.shardOf(v)]
				sh.keys = append(sh.keys, uint64(v)<<32|uint64(uint32(i)))
			}
		}
	} else {
		for i := range flights {
			f := &flights[i]
			var v int
			switch f.state {
			case flightUp: // waiting to turn at its LCA
				v = f.lca
			case flightDown: // holds the down wire above f.node
				v = f.node
			default:
				continue
			}
			if v >= first && v < 2*first {
				sh := &st.shards[st.shardOf(v)]
				sh.keys = append(sh.keys, uint64(v)<<32|uint64(uint32(i)))
			}
		}
	}
	st.curLevel, st.curUp = level, upSweep

	//ftlint:ignore callgraphhotalloc parallel fan-out spawns worker closures by design; the serial path (nil pool) returns before allocating.
	pool.ForEach(len(st.shards), st.routeWorker)

	for s := range st.shards {
		sh := &st.shards[s]
		res.Dropped += sh.drops
		sh.drops = 0
		if e.obs != nil {
			e.observeStreamRuns(sh)
			sh.runs = sh.runs[:0]
		}
		sh.keys = sh.keys[:0]
	}
}

// runRouteShard routes one shard's share of the sweep step: sort groups each
// contested node's flights contiguously in message-index order, then every
// node run is routed independently.
//
//ftlint:hotpath
func (st *streamState) runRouteShard(s int) {
	sh := &st.shards[s]
	if len(sh.keys) == 0 {
		return
	}
	slices.Sort(sh.keys)
	keys := sh.keys
	for start := 0; start < len(keys); {
		v := int(keys[start] >> 32)
		end := start + 1
		for end < len(keys) && int(keys[end]>>32) == v {
			end++
		}
		st.routeStreamNode(sh, v, start, end)
		start = end
	}
}

// routeStreamNode contests node v with the flights of keys[start:end]. The
// ideal-concentrator case is routed inline — Ideal and passThrough
// concentrators are positional and stateless, so the wire each request wins
// is a pure function of its rank in the request list and the capacity
// profile. Partial or lossy switches are materialized lazily and routed
// through the identical request-building path as the dense routeGathered.
//
//ftlint:hotpath
func (st *streamState) routeStreamNode(sh *streamShard, v int, start, end int) {
	flights := st.e.scr.flights
	leafLevel := st.levels
	vLevel := st.curLevel
	upSweep := st.curUp
	capParent := st.capAt(v)
	capChild := st.capAt(2 * v) // the dense constructor sizes both down ports by the left child
	run := sh.keys[start:end]
	obs := st.e.obs != nil
	drops0 := sh.drops
	var dRounds, dFaults int64

	sh.gen++
	gen := sh.gen
	sh.upStamp = growInt64s(sh.upStamp, capParent)
	sh.downStamp[0] = growInt64s(sh.downStamp[0], capChild)
	sh.downStamp[1] = growInt64s(sh.downStamp[1], capChild)

	if st.kind == concentrator.KindIdeal && !st.lossOn {
		if upSweep {
			// toParent is passThrough when the up channel is at least as wide
			// as its two feeders, Ideal (positional: rank j wins wire j)
			// otherwise — the same selection NewSwitch makes.
			passThrough := capParent >= 2*capChild
			for j, k := range run {
				f := &flights[int(uint32(k))]
				if f.node == 2*v+1 && f.wire >= capChild {
					// The dense concentrators reject a concatenated input
					// index beyond their width — reachable only when an
					// override widens a right child past its sibling.
					panic("sim: up request wire exceeds switch input width (widened right-child override)")
				}
				w := -1
				if passThrough {
					w = f.wire
					if f.node == 2*v+1 {
						w = capChild + f.wire
					}
				} else if j < capParent {
					w = j
				}
				st.applyUp(sh, f, v, w, gen, capParent)
			}
		} else {
			// toLeft and toRight are always Ideal (a down port is narrower
			// than its feeders): per port, rank j wins wire j up to the
			// port width capChild.
			jL, jR := 0, 0
			for _, k := range run {
				f := &flights[int(uint32(k))]
				if f.state == flightUp && f.wire >= capChild {
					panic("sim: down request wire exceeds switch input width (widened child override)")
				}
				right := (f.dstLeaf>>uint(leafLevel-vLevel-1))&1 == 1
				var w int
				if right {
					w = jR
					jR++
				} else {
					w = jL
					jL++
				}
				if w >= capChild {
					w = -1
				}
				st.applyDown(sh, f, v, w, right, gen, vLevel, leafLevel)
			}
		}
	} else {
		// Partial or lossy: materialize the node's switch and route through
		// it with the exact request list the dense engine builds.
		reqs := sh.reqs[:0]
		for _, k := range run {
			f := &flights[int(uint32(k))]
			if upSweep {
				in := concentrator.Left
				if f.node == 2*v+1 {
					in = concentrator.Right
				}
				reqs = append(reqs, concentrator.Request{In: in, InWire: f.wire, Out: concentrator.Parent})
				continue
			}
			var in concentrator.Port
			if f.state == flightUp { // turning at its LCA, still on a child-side wire
				in = concentrator.Left
				if f.node == 2*v+1 {
					in = concentrator.Right
				}
			} else { // descending on the parent-side down wire
				in = concentrator.Parent
			}
			out := concentrator.Left
			if (f.dstLeaf>>uint(leafLevel-vLevel-1))&1 == 1 {
				out = concentrator.Right
			}
			reqs = append(reqs, concentrator.Request{In: in, InWire: f.wire, Out: out})
		}
		sh.reqs = reqs

		ss := sh.switchFor(st, v)
		outWires, _ := ss.sw.Route(reqs)
		if obs {
			r := ss.sw.MatchingRounds()
			dRounds, ss.lastRounds = r-ss.lastRounds, r
			fd := ss.sw.FaultDrops()
			dFaults, ss.lastFaults = fd-ss.lastFaults, fd
		}
		for j, k := range run {
			f := &flights[int(uint32(k))]
			if upSweep {
				st.applyUp(sh, f, v, outWires[j], gen, capParent)
				continue
			}
			right := reqs[j].Out == concentrator.Right
			st.applyDown(sh, f, v, outWires[j], right, gen, vLevel, leafLevel)
		}
	}

	if obs {
		sh.runs = append(sh.runs, streamRun{
			v: v, start: start, end: end,
			drops: sh.drops - drops0, dRounds: dRounds, dFaults: dFaults,
		})
	}
}

// applyUp applies one upward-sweep outcome: the wire guard, the history
// record, and the state transition — the streaming copy of routeGathered's
// Parent-port winner path.
//
//ftlint:hotpath
func (st *streamState) applyUp(sh *streamShard, f *flight, v, w int, gen int64, capParent int) {
	if w < 0 {
		f.state = flightLost
		sh.drops++
		return
	}
	if w >= capParent || sh.upStamp[w] == gen {
		panic("sim: up-channel wire oversubscribed (switch bug)")
	}
	sh.upStamp[w] = gen
	f.wire = w
	st.e.scr.histArena[f.histOff+f.histLen] = w
	f.histLen++
	f.state = flightUp
	f.node = v // now holds a wire in the up channel above v
	if v == 1 && f.msg.Dst == core.External {
		// The root up channel is the external interface: delivered.
		f.state = flightDone
	}
}

// applyDown applies one downward-sweep outcome, guarding the wire against the
// destination child's own (possibly overridden) capacity exactly as the dense
// engine does.
//
//ftlint:hotpath
func (st *streamState) applyDown(sh *streamShard, f *flight, v, w int, right bool, gen int64, vLevel, leafLevel int) {
	if w < 0 {
		f.state = flightLost
		sh.drops++
		return
	}
	side, child := 0, 2*v
	if right {
		side, child = 1, 2*v+1
	}
	if w >= st.capAt(child) || sh.downStamp[side][w] == gen {
		panic("sim: down-channel wire oversubscribed (switch bug)")
	}
	sh.downStamp[side][w] = gen
	f.wire = w
	st.e.scr.histArena[f.histOff+f.histLen] = w
	f.histLen++
	f.node = child
	f.state = flightDown
	if vLevel+1 == leafLevel {
		f.state = flightDone
	}
}

// observeStreamRuns replays one shard's routed node runs into the observer at
// the serial merge point: per node the contention record (with the hardware
// counter deltas), then per flight the advance/block/deliver events in
// message-index order — the same events observeLevel emits for the dense
// engine, so counter totals agree bit for bit.
//
//ftlint:hotpath
func (e *Engine) observeStreamRuns(sh *streamShard) {
	o := e.obs
	flights := e.scr.flights
	upSweep := e.stream.curUp
	for r := range sh.runs {
		run := &sh.runs[r]
		o.SwitchDelta(run.v, run.end-run.start, run.drops, run.dRounds, run.dFaults)
		for _, k := range sh.keys[run.start:run.end] {
			i := int(uint32(k))
			f := &flights[i]
			switch f.state {
			case flightLost:
				o.Block(i, f.msg, run.v)
			case flightUp:
				o.Advance(i, f.msg, run.v, run.v, int(core.Up), f.wire)
			case flightDown:
				o.Advance(i, f.msg, run.v, f.node, int(core.Down), f.wire)
			case flightDone:
				if upSweep {
					o.Advance(i, f.msg, run.v, run.v, int(core.Up), f.wire)
				} else {
					o.Advance(i, f.msg, run.v, f.node, int(core.Down), f.wire)
				}
				o.Deliver(i, f.msg, run.v)
			}
		}
	}
}

// collectStream finishes the cycle over contiguous chunks: delivered flags
// are disjoint per-index writes and the per-chunk tallies merge serially in
// chunk order.
//
//ftlint:hotpath
func (e *Engine) collectStream(pool *par.Pool, pending core.MessageSet, flights []flight, res *CycleResult) []bool {
	st := e.stream
	scr := &e.scr
	if cap(scr.delivered) < len(pending) {
		scr.delivered = make([]bool, len(pending), len(pending)+len(pending)/2)
	}
	delivered := scr.delivered[:len(pending)]
	scr.delivered = delivered
	chunks := len(st.shards)
	if chunks > len(flights) {
		chunks = len(flights)
	}

	//ftlint:ignore callgraphhotalloc parallel fan-out spawns worker closures by design; the serial path (nil pool) returns before allocating.
	pool.ForEachChunk(len(flights), chunks, st.collectWorker)

	for _, c := range st.chunkDelivered[:chunks] {
		res.Delivered += c
	}
	return delivered
}

// runCollectChunk tallies one contiguous chunk of flights.
//
//ftlint:hotpath
func (st *streamState) runCollectChunk(chunk, lo, hi int) {
	flights := st.e.scr.flights
	delivered := st.e.scr.delivered
	count := 0
	for i := lo; i < hi; i++ {
		done := flights[i].state == flightDone
		delivered[i] = done
		if done {
			count++
		}
	}
	st.chunkDelivered[chunk] = count
}
