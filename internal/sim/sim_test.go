package sim

import (
	"testing"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/sched"
	"fattree/internal/workload"
)

func TestSingleMessageDelivers(t *testing.T) {
	ft := core.NewConstant(8, 1)
	e := New(ft, concentrator.KindIdeal, 0)
	delivered, res := e.RunCycle(core.MessageSet{{Src: 0, Dst: 7}})
	if !delivered[0] || res.Delivered != 1 || res.Dropped != 0 {
		t.Fatalf("single message not delivered: %+v", res)
	}
}

func TestSiblingMessage(t *testing.T) {
	// A message between siblings turns at the leaf parent without ascending.
	ft := core.NewConstant(8, 1)
	e := New(ft, concentrator.KindIdeal, 0)
	delivered, res := e.RunCycle(core.MessageSet{{Src: 2, Dst: 3}})
	if !delivered[0] || res.Dropped != 0 {
		t.Fatalf("sibling message failed: %+v", res)
	}
}

func TestCongestionDropsExcess(t *testing.T) {
	// Two cross-root messages from the same half on a capacity-1 tree: the
	// level-1 up channel fits one; the other is dropped.
	ft := core.NewConstant(8, 1)
	e := New(ft, concentrator.KindIdeal, 0)
	ms := core.MessageSet{{Src: 0, Dst: 7}, {Src: 2, Dst: 6}}
	delivered, res := e.RunCycle(ms)
	if res.Delivered != 1 {
		t.Fatalf("want exactly 1 delivered, got %+v", res)
	}
	if delivered[0] == delivered[1] {
		t.Fatalf("exactly one message should survive")
	}
	if res.Dropped != 1 {
		t.Fatalf("want 1 drop, got %d", res.Dropped)
	}
}

func TestInjectionDeferral(t *testing.T) {
	// Three messages from one source on a leaf channel of capacity 2: one is
	// deferred before entering the network.
	ft := core.NewConstant(8, 2)
	e := New(ft, concentrator.KindIdeal, 0)
	ms := core.MessageSet{{Src: 0, Dst: 5}, {Src: 0, Dst: 6}, {Src: 0, Dst: 7}}
	_, res := e.RunCycle(ms)
	if res.Deferred != 1 {
		t.Fatalf("want 1 deferral, got %+v", res)
	}
}

func TestOneCycleSetDeliversWithoutLoss(t *testing.T) {
	// Any one-cycle message set must route in a single cycle on ideal
	// switches — the Section III guarantee.
	for _, n := range []int{16, 64} {
		ft := core.NewUniversal(n, n)
		e := New(ft, concentrator.KindIdeal, 0)
		ms := workload.Reversal(n)
		if !core.IsOneCycle(ft, ms) {
			t.Fatalf("precondition: reversal not one-cycle on w=n tree")
		}
		delivered, res := e.RunCycle(ms)
		for i, ok := range delivered {
			if !ok {
				t.Fatalf("n=%d: message %v lost from a one-cycle set (%+v)", n, ms[i], res)
			}
		}
	}
}

func TestRunOnlineDeliversEverything(t *testing.T) {
	for _, tree := range []*core.FatTree{
		core.NewConstant(32, 1),
		core.NewUniversal(32, 8),
		core.NewDoubling(32),
	} {
		e := New(tree, concentrator.KindIdeal, 0)
		ms := workload.Random(32, 200, 5)
		stats := RunOnline(e, ms)
		if stats.Delivered != len(ms) {
			t.Fatalf("%v: delivered %d of %d", tree, stats.Delivered, len(ms))
		}
		if stats.Cycles < 1 {
			t.Fatalf("no cycles recorded")
		}
	}
}

func TestRunScheduleZeroDropsOnIdealSwitches(t *testing.T) {
	// The central integration: a Theorem 1 schedule through the Fig. 3 node
	// hardware with ideal concentrators loses nothing and uses exactly the
	// scheduled number of cycles.
	for _, n := range []int{16, 64, 128} {
		ft := core.NewUniversal(n, n/4)
		ms := workload.Random(n, 5*n, int64(n))
		s := sched.OffLine(ft, ms)
		if err := s.Verify(ms); err != nil {
			t.Fatalf("n=%d: bad schedule: %v", n, err)
		}
		e := New(ft, concentrator.KindIdeal, 0)
		stats := RunSchedule(e, s)
		if stats.Drops != 0 || stats.Deferrals != 0 {
			t.Errorf("n=%d: schedule play lost messages: %+v", n, stats)
		}
		if stats.Cycles != s.Length() {
			t.Errorf("n=%d: played %d cycles for a %d-cycle schedule", n, stats.Cycles, s.Length())
		}
		if stats.Delivered != len(ms) {
			t.Errorf("n=%d: delivered %d of %d", n, stats.Delivered, len(ms))
		}
	}
}

func TestDeliverOffline(t *testing.T) {
	ft := core.NewUniversal(64, 16)
	ms := workload.BitReversal(64)
	stats, s := DeliverOffline(ft, ms)
	if stats.Delivered != len(ms) || stats.Drops != 0 {
		t.Fatalf("offline delivery incomplete: %+v", stats)
	}
	if stats.Cycles != s.Length() {
		t.Fatalf("cycles %d != schedule %d", stats.Cycles, s.Length())
	}
}

func TestPartialSwitchesEventuallyDeliver(t *testing.T) {
	// With Pippenger-style partial concentrators some extra drops occur, but
	// a light workload still completes.
	ft := core.NewUniversal(32, 16)
	e := New(ft, concentrator.KindPartial, 7)
	ms := workload.RandomPermutation(32, 3)
	stats := RunOnline(e, ms)
	if stats.Delivered != len(ms) {
		t.Fatalf("partial switches stalled: %+v", stats)
	}
}

func TestOnlineMatchesLoadFactorOrder(t *testing.T) {
	// Online greedy delivery should finish within a small multiple of
	// λ·lg n cycles on ideal switches for random traffic.
	n := 64
	ft := core.NewConstant(n, 2)
	ms := workload.Random(n, 6*n, 11)
	lam := core.LoadFactor(ft, ms)
	e := New(ft, concentrator.KindIdeal, 0)
	stats := RunOnline(e, ms)
	limit := int(8 * (lam + 1) * float64(ft.Levels()))
	if stats.Cycles > limit {
		t.Errorf("online delivery took %d cycles; λ=%.1f suggests <= %d", stats.Cycles, lam, limit)
	}
}

func TestTicksModel(t *testing.T) {
	ft := core.NewConstant(64, 1)
	// Cross-root message: path 2·lg n = 12 channels.
	m := core.Message{Src: 0, Dst: 63}
	if got := MessageTicks(ft, m, 32); got != 12+32+2 {
		t.Errorf("MessageTicks = %d, want 46", got)
	}
	// Sibling message is much faster.
	if got := MessageTicks(ft, core.Message{Src: 0, Dst: 1}, 32); got != 2+32+2 {
		t.Errorf("sibling MessageTicks = %d, want 36", got)
	}
	if CycleTicks(ft, nil, 8) != 0 {
		t.Errorf("empty cycle should take 0 ticks")
	}
	ms := core.MessageSet{{Src: 0, Dst: 1}, {Src: 0, Dst: 63}}
	if CycleTicks(ft, ms, 8) != MessageTicks(ft, core.Message{Src: 0, Dst: 63}, 8) {
		t.Errorf("cycle ticks should be the max message")
	}
	if MaxCycleTicks(ft, 8) < CycleTicks(ft, ms, 8) {
		t.Errorf("MaxCycleTicks below an actual cycle")
	}
}

func TestCycleTicksIsLogarithmic(t *testing.T) {
	// Doubling n adds exactly 2 ticks (two more channels on the longest
	// path): the O(lg n) delivery-cycle time of Section II.
	prev := 0
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		ft := core.NewConstant(n, 1)
		ticks := MaxCycleTicks(ft, 0)
		if prev != 0 && ticks != prev+2 {
			t.Errorf("n=%d: ticks %d, want %d", n, ticks, prev+2)
		}
		prev = ticks
	}
}

func TestScheduleTicksTotal(t *testing.T) {
	ft := core.NewUniversal(32, 8)
	ms := workload.Random(32, 100, 13)
	s := sched.OffLine(ft, ms)
	total := ScheduleTicks(ft, s.Cycles, 16)
	if total <= 0 {
		t.Fatalf("non-positive total ticks")
	}
	if total > s.Length()*MaxCycleTicks(ft, 16) {
		t.Fatalf("total ticks exceed cycles × max-cycle bound")
	}
}

func TestPipelinedTicks(t *testing.T) {
	ft := core.NewUniversal(64, 16)
	ms := workload.Random(64, 300, 21)
	s := sched.OffLine(ft, ms)
	serial := ScheduleTicks(ft, s.Cycles, 16)
	piped := PipelinedScheduleTicks(ft, s.Cycles, 16)
	if piped > serial {
		t.Errorf("pipelining made things worse: %d > %d", piped, serial)
	}
	if piped <= 0 {
		t.Errorf("non-positive pipelined ticks")
	}
	// Single cycle: pipelining changes nothing meaningful.
	one := []core.MessageSet{{{Src: 0, Dst: 63}}}
	if PipelinedScheduleTicks(ft, one, 16) < CycleTicks(ft, one[0], 16) {
		t.Errorf("single-cycle pipelined ticks below the cycle's duration")
	}
	if PipelinedScheduleTicks(ft, nil, 16) != 0 {
		t.Errorf("empty schedule should take 0 ticks")
	}
}

func TestLocalTrafficUsesShortCycles(t *testing.T) {
	// The telephone-exchange advantage: local traffic completes its cycles in
	// fewer ticks than global traffic because paths are short.
	n := 256
	ft := core.NewConstant(n, 4)
	local := workload.KLocal(n, 300, 2, 17)
	global := workload.BitReversal(n)
	if CycleTicks(ft, local, 8) >= CycleTicks(ft, global, 8) {
		t.Errorf("local cycle (%d ticks) not faster than global (%d ticks)",
			CycleTicks(ft, local, 8), CycleTicks(ft, global, 8))
	}
}
