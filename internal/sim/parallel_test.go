package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/sched"
	"fattree/internal/workload"
)

// The parallel delivery-cycle path must be bit-identical to the serial
// reference path: same delivered messages, same drop/deferral counts, same
// per-cycle outcomes, same wire assignments — for any worker count, for ideal
// and partial concentrators, with and without transient-fault injection.
// These tests are the proof the speedup rests on.

// workerCounts is the sweep the equivalence property is checked across.
func workerCounts() []int {
	counts := []int{1, 2}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 {
		counts = append(counts, g)
	}
	return counts
}

type engineConfig struct {
	kind concentrator.Kind
	loss float64 // transient-fault rate; 0 disables InjectLoss
}

func (c engineConfig) String() string {
	kind := "ideal"
	if c.kind == concentrator.KindPartial {
		kind = "partial"
	}
	return fmt.Sprintf("%s/loss=%v", kind, c.loss)
}

func engineConfigs() []engineConfig {
	return []engineConfig{
		{concentrator.KindIdeal, 0},
		{concentrator.KindIdeal, 0.03},
		{concentrator.KindPartial, 0},
		{concentrator.KindPartial, 0.03},
	}
}

// buildEngine constructs a fresh engine for the config; serial and parallel
// runs each get their own so per-switch RNG streams start identically.
func buildEngine(t *core.FatTree, cfg engineConfig, seed int64, workers int) *Engine {
	e := NewWithOptions(t, cfg.kind, seed, Options{Workers: workers})
	if cfg.loss > 0 {
		e.InjectLoss(cfg.loss, seed+1)
	}
	return e
}

func TestRunParallelEquivalence(t *testing.T) {
	sizes := []int{64, 256, 1024}
	if testing.Short() {
		sizes = []int{64, 256}
	}
	for _, n := range sizes {
		ft := core.NewUniversal(n, n/4)
		for _, cfg := range engineConfigs() {
			ms := workload.Random(n, 3*n, int64(n))
			serial := buildEngine(ft, cfg, 42, 1)
			want := serial.Run(ms)
			for _, w := range workerCounts() {
				parallel := buildEngine(ft, cfg, 42, w)
				got := parallel.RunParallel(ms)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("n=%d %v workers=%d: RunParallel diverged from Run:\nserial   %+v\nparallel %+v",
						n, cfg, w, want, got)
				}
			}
		}
	}
}

// TestRunParallelPropertySweep is a seeded quick-style sweep over random tree
// profiles and workload families: every sampled instance must satisfy the
// parallel == serial property across worker counts.
func TestRunParallelPropertySweep(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for it := 0; it < iters; it++ {
		seed := int64(1000 + it)
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (4 + rng.Intn(4)) // 16..128
		ft := workload.RandomTreeProfile(n, 10, seed)
		var ms core.MessageSet
		switch rng.Intn(4) {
		case 0:
			ms = workload.Random(n, 1+rng.Intn(5*n), seed+1)
		case 1:
			ms = workload.RandomPermutation(n, seed+1)
		case 2:
			ms = workload.BitReversal(n)
		default:
			ms = workload.HotSpot(n, 1+rng.Intn(3*n), seed+1)
		}
		cfgs := engineConfigs()
		cfg := cfgs[rng.Intn(len(cfgs))]
		want := buildEngine(ft, cfg, seed, 1).Run(ms)
		for _, w := range workerCounts() {
			got := buildEngine(ft, cfg, seed, w).RunParallel(ms)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("iter %d (n=%d %v workers=%d): diverged:\nserial   %+v\nparallel %+v",
					it, n, cfg, w, want, got)
			}
		}
	}
}

// TestCycleParallelMatchesSerialExact compares a single delivery cycle at
// full fidelity: per-message delivered flags, counts, the complete wire
// histories, and the bit-serial tick count of the delivered set.
func TestCycleParallelMatchesSerialExact(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		ft := core.NewUniversal(n, n/4)
		for _, cfg := range engineConfigs() {
			ms := workload.Random(n, 2*n, int64(7*n))
			wantDel, wantRes, wantHist := buildEngine(ft, cfg, 9, 1).runCycleWithHistory(ms)
			for _, w := range workerCounts() {
				e := buildEngine(ft, cfg, 9, w)
				gotDel, gotRes, gotHist := e.runCycleParallelWithHistory(ms)
				if !reflect.DeepEqual(wantDel, gotDel) {
					t.Fatalf("n=%d %v workers=%d: delivered flags diverged", n, cfg, w)
				}
				if wantRes != gotRes {
					t.Fatalf("n=%d %v workers=%d: counts diverged: %+v vs %+v", n, cfg, w, wantRes, gotRes)
				}
				if !reflect.DeepEqual(wantHist, gotHist) {
					t.Fatalf("n=%d %v workers=%d: wire histories diverged", n, cfg, w)
				}
				var wantSet, gotSet core.MessageSet
				for i := range ms {
					if wantDel[i] {
						wantSet = append(wantSet, ms[i])
					}
					if gotDel[i] {
						gotSet = append(gotSet, ms[i])
					}
				}
				if CycleTicks(ft, wantSet, 32) != CycleTicks(ft, gotSet, 32) {
					t.Fatalf("n=%d %v workers=%d: tick counts diverged", n, cfg, w)
				}
			}
		}
	}
}

// TestRunCyclesParallelEquivalence plays Theorem 1 schedules through both
// paths: identical stats, and on ideal switches zero drops either way.
func TestRunCyclesParallelEquivalence(t *testing.T) {
	for _, n := range []int{64, 256} {
		ft := core.NewUniversal(n, n/4)
		ms := workload.Random(n, 4*n, int64(n)+3)
		s := sched.OffLine(ft, ms)
		if err := s.Verify(ms); err != nil {
			t.Fatalf("n=%d: bad schedule: %v", n, err)
		}
		for _, cfg := range engineConfigs() {
			want := buildEngine(ft, cfg, 5, 1).RunCycles(s.Cycles)
			for _, w := range workerCounts() {
				got := buildEngine(ft, cfg, 5, w).RunCyclesParallel(s.Cycles)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("n=%d %v workers=%d: schedule playback diverged:\nserial   %+v\nparallel %+v",
						n, cfg, w, want, got)
				}
			}
			if cfg.kind == concentrator.KindIdeal && cfg.loss == 0 && (want.Drops != 0 || want.Delivered != len(ms)) {
				t.Errorf("n=%d: ideal schedule playback lost messages: %+v", n, want)
			}
		}
	}
}

// TestParallelExternalMessages covers the root-interface paths (external
// inputs inject at the root, outputs exit through it) on both cycle paths.
func TestParallelExternalMessages(t *testing.T) {
	n := 64
	ft := core.NewUniversal(n, 16)
	var ms core.MessageSet
	for p := 0; p < n; p += 2 {
		ms = append(ms, core.Message{Src: core.External, Dst: p})
		ms = append(ms, core.Message{Src: p + 1, Dst: core.External})
	}
	for _, cfg := range engineConfigs() {
		want := buildEngine(ft, cfg, 11, 1).Run(ms)
		for _, w := range workerCounts() {
			got := buildEngine(ft, cfg, 11, w).RunParallel(ms)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%v workers=%d: external traffic diverged:\nserial   %+v\nparallel %+v",
					cfg, w, want, got)
			}
		}
	}
}

// TestRunCycleDispatch pins the auto path: a one-worker engine must use the
// serial reference, a multi-worker engine the parallel path, and both must
// agree with the explicit methods.
func TestRunCycleDispatch(t *testing.T) {
	n := 64
	ft := core.NewUniversal(n, 16)
	ms := workload.RandomPermutation(n, 3)
	e1 := NewWithOptions(ft, concentrator.KindIdeal, 0, Options{Workers: 1})
	if e1.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", e1.Workers())
	}
	e4 := NewWithOptions(ft, concentrator.KindIdeal, 0, Options{Workers: 4})
	if e4.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", e4.Workers())
	}
	d1, r1 := e1.RunCycle(ms)
	d4, r4 := e4.RunCycle(ms)
	if !reflect.DeepEqual(d1, d4) || r1 != r4 {
		t.Fatalf("RunCycle dispatch diverged: %+v vs %+v", r1, r4)
	}
	if def := New(ft, concentrator.KindIdeal, 0); def.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("New defaults to %d workers, want GOMAXPROCS", def.Workers())
	}
}
