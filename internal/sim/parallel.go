package sim

import (
	"fattree/internal/core"
)

// This file holds the cycle-path entry points and retry loops around the
// shared data plane in engine.go. A cycle's switching work is embarrassingly
// parallel within one tree level: during a sweep, the switches at level L
// contest disjoint message sets (each in-flight message belongs to exactly
// one level-L node) and disjoint channels, exactly the independence the
// Theorem 1 parallel scheduler exploits per subtree. The parallel entry
// points execute the bucketed data plane on the engine's worker pool
// (internal/par); the serial entry points execute the identical data plane
// inline. Every bucket preserves message-index order and all per-switch
// randomness is pre-seeded by (seed, node), so the cycle's outcome is
// bit-identical across executions for any worker count.

// runCycleWithHistory runs one delivery cycle on the serial execution and
// materializes the per-message wire histories (path order: leaf up channel
// first) as retainable slices. The histories feed the off-line settings
// compiler; the retry loops use the non-materializing runCycle instead.
func (e *Engine) runCycleWithHistory(pending core.MessageSet) ([]bool, CycleResult, [][]int) {
	delivered, res := e.runCycle(pending, nil)
	return delivered, res, e.histories(e.scr.flights)
}

// runCycleParallelWithHistory is the parallel twin of runCycleWithHistory.
func (e *Engine) runCycleParallelWithHistory(pending core.MessageSet) ([]bool, CycleResult, [][]int) {
	delivered, res := e.runCycle(pending, e.pool)
	return delivered, res, e.histories(e.scr.flights)
}

// runCycleAutoWithHistory dispatches the materializing cycle on the engine's
// worker bound.
func (e *Engine) runCycleAutoWithHistory(pending core.MessageSet) ([]bool, CycleResult, [][]int) {
	if e.pool.Workers() > 1 {
		return e.runCycleParallelWithHistory(pending)
	}
	return e.runCycleWithHistory(pending)
}

// RunCycleParallel is RunCycle on the level-sharded parallel path regardless
// of the engine's worker bound (with one worker the level fan-out runs inline
// but the bucketed algorithm is still used). The result is bit-identical to
// the serial path. Like RunCycle, the returned slice is scratch-owned and
// valid only until the engine's next cycle.
func (e *Engine) RunCycleParallel(pending core.MessageSet) ([]bool, CycleResult) {
	return e.runCycle(pending, e.pool)
}

// runLoop is the online retry protocol of Section II parameterized by the
// cycle implementation: every cycle, all undelivered messages are offered to
// the network; losers are negatively acknowledged and retried. The pending
// sets live in the engine's ping-pong scratch buffers, so steady-state
// cycles allocate nothing (stats.PerCycle grows amortized). When an observer
// is attached, first-offer cycle stamps ride along in a parallel ping-pong
// pair so every delivery's latency (in cycles, 1 = delivered on first offer)
// is batched to the observer; the stamps live in the engine's serial loop,
// so latency histograms are bit-identical for any worker count.
func (e *Engine) runLoop(ms core.MessageSet, cycle func(core.MessageSet) ([]bool, CycleResult)) Stats {
	if err := ms.Validate(e.tree); err != nil {
		panic(err)
	}
	var stats Stats
	pending := append(e.scr.pendA[:0], ms...)
	next := e.scr.pendB[:0]
	var ages, agesNext, lat []int64
	if e.obs != nil {
		ages = growInt64s(e.scr.ageA, len(pending))
		for i := range ages {
			ages[i] = 0 // every message is first offered in cycle 0
		}
		agesNext = e.scr.ageB[:0]
		lat = e.scr.latBuf[:0]
	}
	for len(pending) > 0 && stats.Cycles < maxCyclesDefault {
		if stats.Cycles > 0 && e.obs != nil {
			// Everything offered after the first cycle is a retry (the
			// Section II negative-acknowledgment protocol re-offering losers).
			e.obs.Retries(len(pending))
		}
		delivered, res := cycle(pending)
		stats.Cycles++
		stats.Delivered += res.Delivered
		stats.Drops += res.Dropped
		stats.Deferrals += res.Deferred
		stats.PerCycle = append(stats.PerCycle, res.Delivered)
		next = next[:0]
		for i, ok := range delivered {
			if !ok {
				next = append(next, pending[i])
			}
		}
		if e.obs != nil {
			lat, agesNext = lat[:0], agesNext[:0]
			for i, ok := range delivered {
				if ok {
					lat = append(lat, int64(stats.Cycles)-ages[i])
				} else {
					agesNext = append(agesNext, ages[i])
				}
			}
			e.obs.Latencies(lat)
			ages, agesNext = agesNext, ages
		}
		if res.Delivered == 0 && len(next) == len(pending) {
			// No progress: with partial concentrators an unlucky matching can
			// stall identical retries forever; report and stop. Abandoned
			// messages record no latency.
			break
		}
		pending, next = next, pending
	}
	e.scr.pendA, e.scr.pendB = pending[:0], next[:0]
	if e.obs != nil {
		e.scr.ageA, e.scr.ageB, e.scr.latBuf = ages[:0], agesNext[:0], lat[:0]
	}
	return stats
}

// Run delivers ms with the greedy online protocol on the serial reference
// execution, regardless of the engine's worker bound. It is the baseline
// RunParallel is proven bit-identical to.
func (e *Engine) Run(ms core.MessageSet) Stats {
	return e.runLoop(ms, func(pending core.MessageSet) ([]bool, CycleResult) {
		return e.runCycle(pending, nil)
	})
}

// RunParallel delivers ms with the greedy online protocol on the parallel
// cycle path: each cycle's per-node concentrator competitions run
// concurrently on the engine's worker pool, up-phase and down-phase sharded
// by tree level. Delivered, dropped, and deferred counts, the per-cycle
// delivery profile, and every wire assignment are bit-identical to Run for
// any worker count.
func (e *Engine) RunParallel(ms core.MessageSet) Stats {
	return e.runLoop(ms, func(pending core.MessageSet) ([]bool, CycleResult) {
		return e.runCycle(pending, e.pool)
	})
}

// runCyclesLoop plays a precomputed sequence of one-cycle message sets
// through the given cycle implementation, carrying losses forward and
// draining them at the end (losses only occur with partial concentrators or
// injected faults). Pending and carry sets live in engine scratch.
func (e *Engine) runCyclesLoop(cycles []core.MessageSet, cycle func(core.MessageSet) ([]bool, CycleResult)) Stats {
	var stats Stats
	pending := e.scr.pendA[:0]
	carry := e.scr.pendB[:0]
	var ages, carryAges, lat []int64
	if e.obs != nil {
		ages = e.scr.ageA[:0]
		carryAges = e.scr.ageB[:0]
		lat = e.scr.latBuf[:0]
	}
	// observeOutcomes batches the finished cycle's latencies and carries the
	// losers' first-offer stamps forward, mirroring the carry rebuild below.
	observeOutcomes := func(delivered []bool) {
		lat, carryAges = lat[:0], carryAges[:0]
		for i, ok := range delivered {
			if ok {
				lat = append(lat, int64(stats.Cycles)-ages[i])
			} else {
				carryAges = append(carryAges, ages[i])
			}
		}
		e.obs.Latencies(lat)
	}
	for _, cyc := range cycles {
		pending = append(append(pending[:0], carry...), cyc...)
		if e.obs != nil {
			ages = append(ages[:0], carryAges...)
			for range cyc {
				ages = append(ages, int64(stats.Cycles)) // first offered this cycle
			}
			if len(carry) > 0 {
				e.obs.Retries(len(carry)) // carried losses are re-offered
			}
		}
		delivered, res := cycle(pending)
		stats.Cycles++
		stats.Delivered += res.Delivered
		stats.Drops += res.Dropped
		stats.Deferrals += res.Deferred
		stats.PerCycle = append(stats.PerCycle, res.Delivered)
		carry = carry[:0]
		for i, ok := range delivered {
			if !ok {
				carry = append(carry, pending[i])
			}
		}
		if e.obs != nil {
			observeOutcomes(delivered)
		}
	}
	for len(carry) > 0 && stats.Cycles < maxCyclesDefault {
		pending = append(pending[:0], carry...)
		if e.obs != nil {
			ages = append(ages[:0], carryAges...)
			e.obs.Retries(len(pending)) // the drain loop only re-offers losses
		}
		delivered, res := cycle(pending)
		stats.Cycles++
		stats.Delivered += res.Delivered
		stats.Drops += res.Dropped
		stats.Deferrals += res.Deferred
		stats.PerCycle = append(stats.PerCycle, res.Delivered)
		carry = carry[:0]
		for i, ok := range delivered {
			if !ok {
				carry = append(carry, pending[i])
			}
		}
		if e.obs != nil {
			observeOutcomes(delivered)
		}
		if res.Delivered == 0 && len(carry) == len(pending) {
			break
		}
	}
	e.scr.pendA, e.scr.pendB = pending[:0], carry[:0]
	if e.obs != nil {
		e.scr.ageA, e.scr.ageB, e.scr.latBuf = ages[:0], carryAges[:0], lat[:0]
	}
	return stats
}

// RunCycles plays a precomputed sequence of one-cycle message sets (for
// example a schedule's Cycles) on the serial reference execution: cycle i
// injects exactly the i-th set plus any earlier losses.
func (e *Engine) RunCycles(cycles []core.MessageSet) Stats {
	return e.runCyclesLoop(cycles, func(pending core.MessageSet) ([]bool, CycleResult) {
		return e.runCycle(pending, nil)
	})
}

// RunCyclesParallel is RunCycles on the parallel cycle path; its stats are
// bit-identical to RunCycles for any worker count.
func (e *Engine) RunCyclesParallel(cycles []core.MessageSet) Stats {
	return e.runCyclesLoop(cycles, func(pending core.MessageSet) ([]bool, CycleResult) {
		return e.runCycle(pending, e.pool)
	})
}
