package sim

import (
	"fattree/internal/core"
)

// This file implements the parallel delivery-cycle path. A cycle's switching
// work is embarrassingly parallel within one tree level: during a sweep, the
// switches at level L contest disjoint message sets (each in-flight message
// belongs to exactly one level-L node) and disjoint channels, exactly the
// independence the Theorem 1 parallel scheduler exploits per subtree. The
// engine therefore routes each level with the shared worker pool of
// internal/par: flights are bucketed by owning node in message-index order (a
// single O(m) pass, replacing the serial path's per-node scan), the nodes of
// the level are fanned out over the pool, and per-node drop counts are merged
// in node order. Every bucket preserves message-index order, so each switch
// sees the identical request list the serial path builds, and all
// per-switch randomness is pre-seeded by (seed, node) — the cycle's outcome
// is bit-identical to runCycleWithHistory for any worker count.

// runCycleParallelWithHistory is the parallel twin of runCycleWithHistory.
func (e *Engine) runCycleParallelWithHistory(pending core.MessageSet) ([]bool, CycleResult, [][]int) {
	t := e.tree
	leafLevel := t.Levels()
	flights, res := e.inject(pending)

	// Reused per level: bucket[v-first] lists the flights node v owns this
	// sweep step, in message-index order; dropped[v-first] is v's drop count.
	maxNodes := 1 << uint(leafLevel-1)
	buckets := make([][]int, maxNodes)
	nodes := make([]int, 0, maxNodes) // nodes with non-empty buckets, in first-message order
	dropped := make([]int, maxNodes)

	routeLevel := func(first int, upSweep bool) {
		e.pool.ForEach(len(nodes), func(k int) {
			v := nodes[k]
			var local CycleResult
			e.routeGathered(v, flights, buckets[v-first], upSweep, &local)
			dropped[v-first] = local.Dropped
		})
		// Deterministic merge in node order. Only drops occur mid-sweep
		// (delivery and deferral are counted at collect/inject time).
		for _, v := range nodes {
			res.Dropped += dropped[v-first]
			buckets[v-first] = buckets[v-first][:0]
		}
		nodes = nodes[:0]
	}
	own := func(first, v, i int) {
		if v >= first && v < 2*first {
			if len(buckets[v-first]) == 0 {
				nodes = append(nodes, v)
			}
			buckets[v-first] = append(buckets[v-first], i)
		}
	}

	// Upward sweep, leaf parents toward the root.
	for level := leafLevel - 1; level >= 0; level-- {
		first := 1 << uint(level)
		for i := range flights {
			f := &flights[i]
			if f.state != flightUp || f.lca == f.node>>1 {
				continue
			}
			own(first, f.node>>1, i)
		}
		routeLevel(first, true)
	}

	// Downward sweep, root toward the leaves.
	for level := 0; level < leafLevel; level++ {
		first := 1 << uint(level)
		for i := range flights {
			f := &flights[i]
			switch f.state {
			case flightUp: // waiting to turn at its LCA
				own(first, f.lca, i)
			case flightDown: // holds the down wire above f.node
				own(first, f.node, i)
			}
		}
		routeLevel(first, false)
	}

	delivered, hist := collect(pending, flights, &res)
	return delivered, res, hist
}

// RunCycleParallel is RunCycle on the level-sharded parallel path regardless
// of the engine's worker bound (with one worker the level fan-out runs inline
// but the bucketed algorithm is still used). The result is bit-identical to
// the serial path.
func (e *Engine) RunCycleParallel(pending core.MessageSet) ([]bool, CycleResult) {
	delivered, res, _ := e.runCycleParallelWithHistory(pending)
	return delivered, res
}

// runLoop is the online retry protocol of Section II parameterized by the
// cycle implementation: every cycle, all undelivered messages are offered to
// the network; losers are negatively acknowledged and retried.
func (e *Engine) runLoop(ms core.MessageSet, cycle func(core.MessageSet) ([]bool, CycleResult, [][]int)) Stats {
	if err := ms.Validate(e.tree); err != nil {
		panic(err)
	}
	var stats Stats
	pending := ms.Clone()
	for len(pending) > 0 && stats.Cycles < maxCyclesDefault {
		delivered, res, _ := cycle(pending)
		stats.Cycles++
		stats.Delivered += res.Delivered
		stats.Drops += res.Dropped
		stats.Deferrals += res.Deferred
		stats.PerCycle = append(stats.PerCycle, res.Delivered)
		var next core.MessageSet
		for i, ok := range delivered {
			if !ok {
				next = append(next, pending[i])
			}
		}
		if res.Delivered == 0 && len(next) == len(pending) {
			// No progress: with partial concentrators an unlucky matching can
			// stall identical retries forever; report and stop.
			return stats
		}
		pending = next
	}
	return stats
}

// Run delivers ms with the greedy online protocol on the serial reference
// path, regardless of the engine's worker bound. It is the baseline
// RunParallel is proven bit-identical to.
func (e *Engine) Run(ms core.MessageSet) Stats {
	return e.runLoop(ms, e.runCycleWithHistory)
}

// RunParallel delivers ms with the greedy online protocol on the parallel
// cycle path: each cycle's per-node concentrator competitions run
// concurrently on the engine's worker pool, up-phase and down-phase sharded
// by tree level. Delivered, dropped, and deferred counts, the per-cycle
// delivery profile, and every wire assignment are bit-identical to Run for
// any worker count.
func (e *Engine) RunParallel(ms core.MessageSet) Stats {
	return e.runLoop(ms, e.runCycleParallelWithHistory)
}

// runCyclesLoop plays a precomputed sequence of one-cycle message sets
// through the given cycle implementation, carrying losses forward and
// draining them at the end (losses only occur with partial concentrators or
// injected faults).
func (e *Engine) runCyclesLoop(cycles []core.MessageSet, cycle func(core.MessageSet) ([]bool, CycleResult, [][]int)) Stats {
	var stats Stats
	var carry core.MessageSet
	for _, cyc := range cycles {
		pending := core.Concat(carry, cyc)
		delivered, res, _ := cycle(pending)
		stats.Cycles++
		stats.Delivered += res.Delivered
		stats.Drops += res.Dropped
		stats.Deferrals += res.Deferred
		stats.PerCycle = append(stats.PerCycle, res.Delivered)
		carry = nil
		for i, ok := range delivered {
			if !ok {
				carry = append(carry, pending[i])
			}
		}
	}
	for len(carry) > 0 && stats.Cycles < maxCyclesDefault {
		delivered, res, _ := cycle(carry)
		stats.Cycles++
		stats.Delivered += res.Delivered
		stats.Drops += res.Dropped
		stats.Deferrals += res.Deferred
		stats.PerCycle = append(stats.PerCycle, res.Delivered)
		var next core.MessageSet
		for i, ok := range delivered {
			if !ok {
				next = append(next, carry[i])
			}
		}
		if res.Delivered == 0 && len(next) == len(carry) {
			return stats
		}
		carry = next
	}
	return stats
}

// RunCycles plays a precomputed sequence of one-cycle message sets (for
// example a schedule's Cycles) on the serial reference path: cycle i injects
// exactly the i-th set plus any earlier losses.
func (e *Engine) RunCycles(cycles []core.MessageSet) Stats {
	return e.runCyclesLoop(cycles, e.runCycleWithHistory)
}

// RunCyclesParallel is RunCycles on the parallel cycle path; its stats are
// bit-identical to RunCycles for any worker count.
func (e *Engine) RunCyclesParallel(cycles []core.MessageSet) Stats {
	return e.runCyclesLoop(cycles, e.runCycleParallelWithHistory)
}
