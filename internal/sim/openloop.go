package sim

import (
	"math/rand"

	"fattree/internal/core"
)

// Open-loop operation: rather than a fixed batch, messages arrive over time
// and the network runs delivery cycles continuously — the regime in which a
// machine actually computes. The offered load is measured against the
// fat-tree's capacity (λ per cycle of the arrival pattern); below saturation
// the backlog stays bounded and latency flat, above it the backlog grows
// linearly. The saturation point is the throughput the hardware budget buys.

// OpenLoopStats summarizes a sustained run.
type OpenLoopStats struct {
	// Cycles run, messages injected and delivered.
	Cycles    int
	Offered   int
	Delivered int
	// Backlog is the undelivered count at the end; BacklogSlope is the mean
	// per-cycle backlog growth over the second half of the run (≈0 below
	// saturation, positive above).
	Backlog      int
	BacklogSlope float64
	// MeanLatency is the average delivery delay in cycles (from arrival to
	// delivery) of delivered messages.
	MeanLatency float64
}

// ArrivalFunc returns the messages arriving at the start of a cycle.
type ArrivalFunc func(cycle int) core.MessageSet

// UniformArrivals builds an arrival process offering `perCycle` uniformly
// random messages every cycle, seeded.
func UniformArrivals(t core.Topology, perCycle int, seed int64) ArrivalFunc {
	rng := rand.New(rand.NewSource(seed))
	n := t.Processors()
	return func(int) core.MessageSet {
		ms := make(core.MessageSet, 0, perCycle)
		for len(ms) < perCycle {
			s, d := rng.Intn(n), rng.Intn(n)
			if s != d {
				ms = append(ms, core.Message{Src: s, Dst: d})
			}
		}
		return ms
	}
}

// RunOpenLoop drives the engine for the given number of cycles with the
// arrival process, delivering with randomized per-cycle priorities (the
// on-line protocol), and reports sustained-throughput statistics.
func RunOpenLoop(e *Engine, arrivals ArrivalFunc, cycles int, seed int64) OpenLoopStats {
	rng := rand.New(rand.NewSource(seed))
	var stats OpenLoopStats
	type pendingMsg struct {
		msg     core.Message
		arrived int
	}
	var pending []pendingMsg
	latencySum := 0

	backlogAt := make([]int, cycles)
	for cyc := 0; cyc < cycles; cyc++ {
		for _, m := range arrivals(cyc) {
			pending = append(pending, pendingMsg{msg: m, arrived: cyc})
			stats.Offered++
		}
		rng.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
		batch := make(core.MessageSet, len(pending))
		for i, p := range pending {
			batch[i] = p.msg
		}
		delivered, res := e.RunCycle(batch)
		stats.Cycles++
		stats.Delivered += res.Delivered
		var next []pendingMsg
		for i, ok := range delivered {
			if ok {
				latencySum += cyc - pending[i].arrived + 1
			} else {
				next = append(next, pending[i])
			}
		}
		pending = next
		backlogAt[cyc] = len(pending)
	}
	stats.Backlog = len(pending)
	if stats.Delivered > 0 {
		stats.MeanLatency = float64(latencySum) / float64(stats.Delivered)
	}
	// Backlog slope over the second half: linear growth means saturation.
	half := cycles / 2
	if cycles-half > 1 {
		stats.BacklogSlope = float64(backlogAt[cycles-1]-backlogAt[half]) / float64(cycles-1-half)
	}
	return stats
}
