package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNilAndDefaultPools(t *testing.T) {
	t.Parallel()
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Errorf("nil pool workers = %d, want 1", nilPool.Workers())
	}
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Errorf("New(5).Workers() = %d, want 5", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		New(workers).ForEach(n, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	t.Parallel()
	ran := 0
	New(4).ForEach(0, func(int) { ran++ })
	if ran != 0 {
		t.Errorf("ForEach(0) ran %d items", ran)
	}
	New(4).ForEach(1, func(i int) { ran += i + 1 })
	if ran != 1 {
		t.Errorf("ForEach(1) ran wrong item")
	}
}

func TestMapDeterministicOrder(t *testing.T) {
	t.Parallel()
	const n = 500
	want := Map(New(1), n, func(i int) int { return i * i })
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		got := Map(New(workers), n, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapIntoReusesBacking(t *testing.T) {
	t.Parallel()
	const n = 100
	scratch := make([]int, 0, n)
	got := MapInto(New(4), scratch, n, func(i int) int { return 2 * i })
	if &got[0] != &scratch[:1][0] {
		t.Error("MapInto reallocated despite sufficient capacity")
	}
	for i := range got {
		if got[i] != 2*i {
			t.Fatalf("slot %d = %d, want %d", i, got[i], 2*i)
		}
	}
	// Shrinking reuses, growing past capacity reallocates.
	if small := MapInto(New(2), got, 10, func(i int) int { return i }); &small[0] != &got[0] {
		t.Error("MapInto reallocated when shrinking")
	}
	big := MapInto(New(2), got, n+1, func(i int) int { return -i })
	if len(big) != n+1 || big[n] != -n {
		t.Errorf("MapInto grow: len=%d big[n]=%d", len(big), big[n])
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	t.Parallel()
	// A nil pool must still execute everything (serially).
	var p *Pool
	sum := 0
	p.ForEach(10, func(i int) { sum += i })
	if sum != 45 {
		t.Errorf("nil pool sum = %d, want 45", sum)
	}
}

func TestForEachChunkCoversExactly(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ n, chunks, workers int }{
		{0, 4, 2}, {1, 4, 2}, {7, 3, 3}, {10, 4, 1}, {16, 16, 8}, {100, 7, 4}, {5, 100, 2},
	} {
		var mu sync.Mutex
		seen := make([]int, tc.n)
		New(tc.workers).ForEachChunk(tc.n, tc.chunks, func(chunk, lo, hi int) {
			if lo >= hi {
				t.Errorf("n=%d chunks=%d: empty chunk %d [%d,%d)", tc.n, tc.chunks, chunk, lo, hi)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d chunks=%d: index %d covered %d times", tc.n, tc.chunks, i, c)
			}
		}
	}
}

func TestForEachChunkSerialOrder(t *testing.T) {
	t.Parallel()
	// One worker (and a nil pool) must visit chunks inline, in order, with
	// contiguous ranges.
	var p *Pool
	var bounds []int
	p.ForEachChunk(10, 3, func(chunk, lo, hi int) { bounds = append(bounds, chunk, lo, hi) })
	want := []int{0, 0, 4, 1, 4, 7, 2, 7, 10}
	if len(bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
}
