// Package par provides the bounded worker-pool and deterministic fan-out
// pattern shared by the parallel subsystems of the repository: the Theorem 1
// parallel scheduler (internal/sched), the parallel delivery-cycle engine
// (internal/sim), and the concurrent experiment runner (cmd/ftbench).
//
// The pattern is always the same: a batch of independent work items — the
// nodes of one tree level, the experiments of a suite — is fanned out over at
// most Workers goroutines, and every item writes only its own result slot, so
// the merged output is in item order and bit-identical to a serial run no
// matter how many workers execute it or in which order they finish. A pool
// with one worker runs everything inline on the calling goroutine: the serial
// path is the one-worker special case, not a separate code path.
package par

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// workerLabels tags every pool worker goroutine for CPU profiling, so
// `go tool pprof -tagfocus pool=par` isolates the samples spent inside the
// parallel fan-out (the delivery engine's level sharding, the scheduler's
// subtree recursion, the benchmark runner). Built once; pprof.Do on the
// worker body is outside the allocation-free serial path, which never spawns
// goroutines.
var workerLabels = pprof.Labels("pool", "par")

// Pool is a bounded worker pool. It holds no goroutines between calls — the
// bound is applied per ForEach/Map invocation — so a Pool is cheap to create,
// safe for concurrent use, and never leaks.
type Pool struct {
	workers int
}

// New returns a pool that runs at most workers items concurrently. A value
// <= 0 selects runtime.GOMAXPROCS(0), the number of usable CPUs.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound. A nil pool reports 1 (serial).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ForEach runs fn(i) for every i in [0, n), using at most min(Workers, n)
// goroutines. Items are claimed dynamically, so uneven item costs still load-
// balance; fn must therefore be safe to call from any goroutine, and distinct
// items must not write shared state. With one worker (or one item) everything
// runs inline on the calling goroutine in index order.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			pprof.Do(context.Background(), workerLabels, func(context.Context) {
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					fn(i)
				}
			})
		}()
	}
	wg.Wait()
}

// ForEachChunk splits [0, n) into `chunks` contiguous near-equal ranges and
// runs fn(chunk, lo, hi) for each non-empty one on the pool. It is the
// cache-friendly fan-out for index-parallel scans whose per-item cost is tiny
// (collecting delivered flights, folding per-shard tallies): each worker
// touches one contiguous range instead of interleaving with the others.
// Distinct chunks must not write shared state; per-chunk results are merged
// by the caller in chunk order. With one worker everything runs inline in
// chunk order, so the serial path remains the one-worker special case.
func (p *Pool) ForEachChunk(n, chunks int, fn func(chunk, lo, hi int)) {
	if n <= 0 || chunks <= 0 {
		return
	}
	if chunks > n {
		chunks = n
	}
	size, rem := n/chunks, n%chunks
	if p.Workers() <= 1 || chunks == 1 {
		// Inline serial path: no adapter closure, so allocation-free callers
		// stay allocation-free (the parallel path below spawns goroutines and
		// is not).
		for c := 0; c < chunks; c++ {
			lo := c*size + min(c, rem)
			hi := lo + size
			if c < rem {
				hi++
			}
			fn(c, lo, hi)
		}
		return
	}
	p.ForEach(chunks, func(c int) {
		lo := c*size + min(c, rem)
		hi := lo + size
		if c < rem {
			hi++
		}
		fn(c, lo, hi)
	})
}

// Map runs fn over [0, n) on the pool and returns the results in index order —
// the deterministic merge: out[i] = fn(i) regardless of worker count or
// completion order.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	return MapInto(p, make([]T, n), n, fn)
}

// MapInto is Map with caller-owned result storage: dst is resized (reusing its
// backing array when capacity allows) to n and dst[i] = fn(i) for every i in
// [0, n). Arena-backed callers — the scheduler's level fan-out, the engine's
// shard merge — pass a scratch slice they reuse across calls, so the
// steady-state fan-out allocates nothing.
func MapInto[T any](p *Pool, dst []T, n int, fn func(i int) T) []T {
	if cap(dst) < n {
		dst = make([]T, n)
	}
	dst = dst[:n]
	p.ForEach(n, func(i int) {
		dst[i] = fn(i)
	})
	return dst
}
