package universal

import (
	"math"
	"testing"

	"fattree/internal/baseline"
	"fattree/internal/core"
	"fattree/internal/workload"
)

func TestIdentifyCoversAllProcessors(t *testing.T) {
	for _, net := range []baseline.Network{
		baseline.NewHypercube(64),
		baseline.NewMesh(64),
		baseline.NewBinaryTree(64),
		baseline.NewButterfly(64),
	} {
		id := Identify(net, 1)
		if len(id.FTLeaf) != net.Procs() {
			t.Errorf("%s: %d identified", net.Name(), len(id.FTLeaf))
		}
		seen := map[int]bool{}
		for p, slot := range id.FTLeaf {
			if slot < 0 || slot >= id.Tree.Processors() {
				t.Errorf("%s: processor %d mapped to invalid slot %d", net.Name(), p, slot)
			}
			if seen[slot] {
				t.Errorf("%s: slot %d assigned twice", net.Name(), slot)
			}
			seen[slot] = true
		}
	}
}

func TestRemapPreservesStructure(t *testing.T) {
	net := baseline.NewHypercube(32)
	id := Identify(net, 1)
	ms := workload.RandomPermutation(32, 1)
	remapped := id.Remap(ms)
	if len(remapped) != len(ms) {
		t.Fatalf("remap changed message count")
	}
	if err := remapped.Validate(id.Tree); err != nil {
		t.Fatalf("remapped set invalid: %v", err)
	}
}

func TestSimulateHypercube(t *testing.T) {
	net := baseline.NewHypercube(64)
	ms := workload.BitReversal(64)
	r := Simulate(net, ms, 1)
	if r.NetworkCycles < 1 || r.FatTreeCycles < 1 {
		t.Fatalf("degenerate report: %+v", r)
	}
	// The shape claim of Theorem 10: slowdown within a constant times lg³ n.
	if r.Slowdown > 8*r.PolylogBound {
		t.Errorf("slowdown %.1f far exceeds polylog envelope %.1f", r.Slowdown, r.PolylogBound)
	}
}

func TestSimulateSlowdownGrowsPolylog(t *testing.T) {
	// As n doubles, slowdown/lg³n should stay bounded (not grow
	// polynomially). Compare the ratio across sizes.
	var ratios []float64
	for _, n := range []int{16, 32, 64, 128} {
		net := baseline.NewHypercube(n)
		r := Simulate(net, workload.RandomPermutation(n, 7), 1)
		if r.NetworkCycles == 0 {
			t.Fatalf("n=%d: zero network cycles", n)
		}
		ratios = append(ratios, r.Slowdown/r.PolylogBound)
	}
	// The normalized ratio must not blow up: allow 4x drift across an 8x
	// size range (a polynomial slowdown would grow ~64x).
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > 6*ratios[0]+1 {
			t.Errorf("normalized slowdown drifts: %v", ratios)
		}
	}
}

func TestSimulateMeshIsEasy(t *testing.T) {
	// A mesh has tiny volume, so its equal-volume fat-tree is skinny — but
	// mesh traffic is local-ish and slow on the mesh itself, so the fat-tree
	// keeps up within the polylog envelope.
	net := baseline.NewMesh(64)
	ms := workload.Transpose(64)
	r := Simulate(net, ms, 1)
	if r.Slowdown > 8*r.PolylogBound {
		t.Errorf("mesh simulation slowdown %.1f exceeds envelope %.1f", r.Slowdown, r.PolylogBound)
	}
}

func TestFatTreeVolumeMatchesNetwork(t *testing.T) {
	net := baseline.NewHypercube(256)
	id := Identify(net, 1)
	// The fat-tree of hypercube volume must have a large root capacity
	// (hypercubes are universal at volume n^(3/2); the equal-volume universal
	// fat-tree has root capacity ~ n/lg-ish).
	if id.Tree.RootCapacity() < 32 {
		t.Errorf("root capacity %d too small for hypercube volume", id.Tree.RootCapacity())
	}
	if id.Tree.Processors() != 256 {
		t.Errorf("fat-tree on %d processors", id.Tree.Processors())
	}
}

func TestEmbedFixedConnections(t *testing.T) {
	net := baseline.NewHypercube(32)
	id, s := EmbedFixedConnections(net, 1)
	// 32 nodes × 5 links each = 160 directed links.
	if got := s.Messages(); got != 160 {
		t.Errorf("embedded %d link messages, want 160", got)
	}
	if err := s.Verify(id.Remap(hypercubeLinks(32))); err != nil {
		t.Errorf("embedding schedule invalid: %v", err)
	}
	// One communication step of the hypercube should cost few delivery
	// cycles on the identified fat-tree (O(lg n) at most by the discussion
	// after Theorem 10, since the hypercube fat-tree is wide).
	bound := 4 * core.Lg(32) * core.Lg(32)
	if s.Length() > bound {
		t.Errorf("fixed-connection step takes %d cycles (> %d)", s.Length(), bound)
	}
}

// hypercubeLinks reproduces the link set EmbedFixedConnections discovers.
func hypercubeLinks(n int) core.MessageSet {
	var ms core.MessageSet
	for p := 0; p < n; p++ {
		for b := 1; b < n; b <<= 1 {
			ms = append(ms, core.Message{Src: p, Dst: p ^ b})
		}
	}
	return ms
}

func TestSimulateOnline(t *testing.T) {
	net := baseline.NewHypercube(64)
	ms := workload.RandomPermutation(64, 3)
	r := SimulateOnline(net, ms, 1, 9)
	if r.FatTreeCycles < 1 {
		t.Fatalf("degenerate online report: %+v", r)
	}
	if r.Slowdown > 8*r.PolylogBound {
		t.Errorf("online slowdown %.1f outside envelope %.1f", r.Slowdown, r.PolylogBound)
	}
	// The envelope carries the extra lg lg n factor.
	off := Simulate(net, ms, 1)
	if r.PolylogBound <= off.PolylogBound {
		t.Errorf("online envelope %.0f should exceed offline %.0f", r.PolylogBound, off.PolylogBound)
	}
}

func TestSimulateOnlineReproducible(t *testing.T) {
	net := baseline.NewMesh(64)
	ms := workload.Transpose(64)
	a := SimulateOnline(net, ms, 1, 5)
	b := SimulateOnline(net, ms, 1, 5)
	if a.FatTreeCycles != b.FatTreeCycles {
		t.Errorf("same seed, different cycles: %d vs %d", a.FatTreeCycles, b.FatTreeCycles)
	}
}

func TestPolylogBound(t *testing.T) {
	net := baseline.NewHypercube(64)
	r := Simulate(net, workload.Reversal(64), 1)
	if math.Abs(r.PolylogBound-216) > 1e-9 { // lg³ 64 = 6³
		t.Errorf("polylog bound %.1f, want 216", r.PolylogBound)
	}
}
