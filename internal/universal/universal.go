// Package universal implements the universality machinery of Section VI: a
// universal fat-tree occupying the same physical volume as an arbitrary
// routing network R can deliver (off-line) any message set R delivers in time
// t with only polylogarithmic slowdown — O(t·lg³ n) — where the three lg n
// factors come from the volume-constrained root capacity, the off-line
// scheduling algorithm, and the O(lg n) switching time of a delivery cycle
// (Theorem 10).
//
// The pipeline follows the proof: lay out R in a cube, cut the cube into a
// decomposition tree (Theorem 5), balance it (Theorem 8), identify the
// processors at the balanced tree's leaves with the fat-tree's leaves, bound
// the load factor the message set induces, and schedule it off-line
// (Theorem 1).
package universal

import (
	"fmt"
	"math"

	"fattree/internal/baseline"
	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/decomp"
	"fattree/internal/sched"
	"fattree/internal/sim"
	"fattree/internal/vlsi"
)

// Identification maps a network's processors onto a fat-tree's leaves via the
// balanced decomposition tree of the network's physical layout.
type Identification struct {
	// FTLeaf[p] is the fat-tree processor slot assigned to network processor p.
	FTLeaf []int
	// Tree is the universal fat-tree of the network's volume.
	Tree *core.FatTree
	// DecompDepth and BalancedHeight record the Section V structures' sizes.
	DecompDepth    int
	BalancedHeight int
}

// Identify runs the Section V pipeline for the network: layout → cut-plane
// decomposition tree → balanced decomposition tree → leaf identification,
// and builds the universal fat-tree of the same volume. gamma is the
// area-to-bandwidth constant of the VLSI model (1 in normalized units).
func Identify(net baseline.Network, gamma float64) *Identification {
	layout := net.Layout()
	dtree := decomp.CutPlanes(layout, gamma)
	btree := decomp.Balance(dtree)
	if err := btree.Validate(); err != nil {
		panic(fmt.Sprintf("universal: balanced tree invalid: %v", err))
	}
	order := btree.LeafOrder(dtree)
	if len(order) != net.Procs() {
		panic(fmt.Sprintf("universal: identification covers %d of %d processors",
			len(order), net.Procs()))
	}

	// The fat-tree needs a power-of-two leaf count at least the processor
	// count; extra leaves stay idle.
	n := 2
	for n < net.Procs() {
		n *= 2
	}
	ft := vlsi.NewUniversalOfVolume(n, net.Volume())

	id := &Identification{
		FTLeaf:         make([]int, net.Procs()),
		Tree:           ft,
		DecompDepth:    dtree.Depth,
		BalancedHeight: btree.Height(),
	}
	for slot, proc := range order {
		id.FTLeaf[proc] = slot
	}
	return id
}

// Remap translates a message set over the network's processors into the
// fat-tree's processor numbering.
func (id *Identification) Remap(ms core.MessageSet) core.MessageSet {
	out := make(core.MessageSet, len(ms))
	for i, m := range ms {
		out[i] = core.Message{Src: id.FTLeaf[m.Src], Dst: id.FTLeaf[m.Dst]}
	}
	return out
}

// Report is the outcome of one Theorem 10 simulation experiment.
type Report struct {
	Network      string
	Procs        int
	Volume       float64
	RootCapacity int

	// NetworkCycles is t: the unit-time steps the network itself needs to
	// deliver the message set under store-and-forward contention.
	NetworkCycles int
	// LoadFactor is λ(M) of the remapped message set on the fat-tree.
	LoadFactor float64
	// FatTreeCycles is d: the off-line schedule's delivery cycles.
	FatTreeCycles int
	// CycleTicks is the O(lg n) clock-tick cost of one delivery cycle.
	CycleTicks int
	// FatTreeTicks = FatTreeCycles × CycleTicks, the fat-tree's total time in
	// the same clock units as NetworkCycles.
	FatTreeTicks int
	// Slowdown is FatTreeTicks / NetworkCycles.
	Slowdown float64
	// PolylogBound is lg³ n — the Theorem 10 slowdown envelope (constant 1);
	// the *shape* claim is Slowdown = O(PolylogBound) as n grows.
	PolylogBound float64
}

// Simulate runs the full Theorem 10 experiment: deliver ms on the network
// itself, then deliver the identified message set on the equal-volume
// universal fat-tree via an off-line schedule, and compare times.
func Simulate(net baseline.Network, ms core.MessageSet, gamma float64) *Report {
	if err := baseline.ValidateRoutes(net, ms); err != nil {
		panic(err)
	}
	id := Identify(net, gamma)
	ft := id.Tree
	remapped := id.Remap(ms)

	netRes := baseline.Deliver(net, ms)
	schedule := sched.OffLine(ft, remapped)
	if err := schedule.Verify(remapped); err != nil {
		panic(fmt.Sprintf("universal: invalid schedule: %v", err))
	}
	cycleTicks := sim.MaxCycleTicks(ft, 0)

	r := &Report{
		Network:       net.Name(),
		Procs:         net.Procs(),
		Volume:        net.Volume(),
		RootCapacity:  ft.RootCapacity(),
		NetworkCycles: netRes.Cycles,
		LoadFactor:    schedule.LoadFactor,
		FatTreeCycles: schedule.Length(),
		CycleTicks:    cycleTicks,
		FatTreeTicks:  schedule.Length() * cycleTicks,
	}
	if netRes.Cycles > 0 {
		r.Slowdown = float64(r.FatTreeTicks) / float64(netRes.Cycles)
	}
	lg := math.Log2(float64(ft.Processors()))
	r.PolylogBound = lg * lg * lg
	return r
}

// SimulateOnline is the on-line analog of Simulate, anticipating the paper's
// closing claim that "one can obtain an on-line analog to Theorem 10, except
// with an O(lg³ n · lg lg n) time degradation": the identified message set is
// delivered by the randomized on-line protocol (no precomputed schedule)
// instead of the Theorem 1 off-line schedule.
func SimulateOnline(net baseline.Network, ms core.MessageSet, gamma float64, seed int64) *Report {
	if err := baseline.ValidateRoutes(net, ms); err != nil {
		panic(err)
	}
	id := Identify(net, gamma)
	ft := id.Tree
	remapped := id.Remap(ms)

	netRes := baseline.Deliver(net, ms)
	engine := sim.New(ft, concentrator.KindIdeal, seed)
	stats := sim.RunOnlineRandom(engine, remapped, seed+1)
	if stats.Delivered != len(remapped) {
		panic("universal: on-line delivery incomplete")
	}
	cycleTicks := sim.MaxCycleTicks(ft, 0)

	r := &Report{
		Network:       net.Name(),
		Procs:         net.Procs(),
		Volume:        net.Volume(),
		RootCapacity:  ft.RootCapacity(),
		NetworkCycles: netRes.Cycles,
		LoadFactor:    core.LoadFactor(ft, remapped),
		FatTreeCycles: stats.Cycles,
		CycleTicks:    cycleTicks,
		FatTreeTicks:  stats.Cycles * cycleTicks,
	}
	if netRes.Cycles > 0 {
		r.Slowdown = float64(r.FatTreeTicks) / float64(netRes.Cycles)
	}
	lg := math.Log2(float64(ft.Processors()))
	lglg := math.Log2(lg)
	if lglg < 1 {
		lglg = 1
	}
	r.PolylogBound = lg * lg * lg * lglg
	return r
}

// EmbedFixedConnections treats each direct connection of a degree-d
// fixed-connection network as a message (both directions) and reports how
// many delivery cycles the identified fat-tree needs to realize one
// communication step over every link simultaneously — the application
// discussed after Theorem 10: with channel capacities inflated by lg n, the
// connections form a one-cycle message set and the simulation loses only
// O(lg n) time per step. It applies to *direct* networks, where processors
// are linked to processors (hypercube, mesh, shuffle-exchange, tree);
// indirect networks such as the butterfly have no processor-to-processor
// links and yield an empty schedule.
func EmbedFixedConnections(net baseline.Network, gamma float64) (*Identification, *sched.Schedule) {
	id := Identify(net, gamma)
	var links core.MessageSet
	n := net.Procs()
	seen := map[[2]int]bool{}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p == q {
				continue
			}
			// A link exists when the route is a single hop.
			if len(net.Route(p, q)) == 2 && !seen[[2]int{p, q}] {
				seen[[2]int{p, q}] = true
				links = append(links, core.Message{Src: p, Dst: q})
			}
		}
	}
	remapped := id.Remap(links)
	s := sched.OffLine(id.Tree, remapped)
	return id, s
}
