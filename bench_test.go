// Benchmarks regenerating every experiment of the paper (one per
// table/figure; see DESIGN.md §3 and EXPERIMENTS.md), plus micro-benchmarks
// of the core primitives. Run with:
//
//	go test -bench=. -benchmem
package fattree_test

import (
	"io"
	"testing"

	"fattree"
	"fattree/internal/experiments"
)

// benchExperiment runs one experiment per iteration at quick sizes.
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.RunAndPrint(io.Discard, experiments.Options{Quick: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Topology(b *testing.B)        { benchExperiment(b, "E1") }
func BenchmarkE2Concentrator(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkE3OfflineSchedule(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4BigChannels(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5Hardware(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6Decomposition(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7Balanced(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8Universality(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9NonUniversal(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Locality(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Permutation(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12BitSerial(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13Online(b *testing.B)         { benchExperiment(b, "E13") }
func BenchmarkE14CCC(b *testing.B)            { benchExperiment(b, "E14") }
func BenchmarkE15Layout(b *testing.B)         { benchExperiment(b, "E15") }
func BenchmarkE16Applications(b *testing.B)   { benchExperiment(b, "E16") }
func BenchmarkE17Faults(b *testing.B)         { benchExperiment(b, "E17") }
func BenchmarkE18Mesh3D(b *testing.B)         { benchExperiment(b, "E18") }
func BenchmarkE19Buffered(b *testing.B)       { benchExperiment(b, "E19") }
func BenchmarkE20Online(b *testing.B)         { benchExperiment(b, "E20") }
func BenchmarkE21ExternalIO(b *testing.B)     { benchExperiment(b, "E21") }
func BenchmarkE22Clos(b *testing.B)           { benchExperiment(b, "E22") }
func BenchmarkE23Portability(b *testing.B)    { benchExperiment(b, "E23") }
func BenchmarkE24AreaUniversal(b *testing.B)  { benchExperiment(b, "E24") }
func BenchmarkE25Saturation(b *testing.B)     { benchExperiment(b, "E25") }
func BenchmarkA1ProfileAblation(b *testing.B) { benchExperiment(b, "A1") }
func BenchmarkA2SwitchAblation(b *testing.B)  { benchExperiment(b, "A2") }

// Micro-benchmarks of the primitives the experiments are built from.

func BenchmarkLoadFactor(b *testing.B) {
	ft := fattree.NewUniversal(1024, 256)
	ms := fattree.Random(1024, 4096, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fattree.LoadFactor(ft, ms) <= 0 {
			b.Fatal("bad load factor")
		}
	}
}

func BenchmarkEvenBisect(b *testing.B) {
	ft := fattree.NewConstant(1024, 1)
	// Root-crossing messages.
	var ms fattree.MessageSet
	for p := 0; p < 512; p++ {
		ms = append(ms, fattree.Message{Src: p, Dst: 1023 - p})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := fattree.EvenBisect(ft, 1, ms)
		if len(a)+len(c) != len(ms) {
			b.Fatal("bisect lost messages")
		}
	}
}

func BenchmarkScheduleOffline(b *testing.B) {
	for _, n := range []int{256, 1024} {
		ft := fattree.NewUniversal(n, n/4)
		ms := fattree.Random(n, 4*n, 1)
		b.Run("n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := fattree.ScheduleOffline(ft, ms)
				if s.Length() == 0 {
					b.Fatal("empty schedule")
				}
			}
		})
	}
}

func BenchmarkScheduleOfflineParallel(b *testing.B) {
	n := 1024
	ft := fattree.NewUniversal(n, n/4)
	ms := fattree.Random(n, 4*n, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := fattree.ScheduleOfflineParallel(ft, ms)
		if s.Length() == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkCompact(b *testing.B) {
	n := 1024
	ft := fattree.NewUniversal(n, n/4)
	ms := fattree.Random(n, 4*n, 1)
	s := fattree.ScheduleOffline(ft, ms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fattree.CompactSchedule(s).Length() == 0 {
			b.Fatal("empty schedule")
		}
	}
}

func BenchmarkRunBuffered(b *testing.B) {
	ft := fattree.NewUniversal(256, 64)
	ms := fattree.RandomPermutation(256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fattree.RunBuffered(ft, ms, 4).Delivered != len(ms) {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkScheduleOfflineBig(b *testing.B) {
	n := 256
	ft := fattree.NewConstant(n, 2*fattree.Lg(n))
	ms := fattree.Random(n, 8*n, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := fattree.ScheduleOfflineBig(ft, ms)
		if s.Length() == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkEngineSerial vs BenchmarkEngineParallel measure the delivery-cycle
// engine's two paths on identical workloads (random permutation, ideal
// switches): the serial reference scans every flight at every switch, the
// parallel path buckets flights by owning node and fans each tree level out
// over the worker pool. The outputs are bit-identical (see the equivalence
// tests in internal/sim); only wall-clock differs. Recorded in EXPERIMENTS.md
// under "A3 — engine parallel speedup".
func benchEngineRun(b *testing.B, n int, parallel bool) {
	ft := fattree.NewUniversal(n, n/4)
	ms := fattree.RandomPermutation(n, 1)
	e := fattree.NewEngine(ft, fattree.SwitchIdeal, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var stats fattree.Stats
		if parallel {
			stats = e.RunParallel(ms)
		} else {
			stats = e.Run(ms)
		}
		if stats.Delivered != len(ms) {
			b.Fatalf("delivered %d of %d", stats.Delivered, len(ms))
		}
	}
}

func BenchmarkEngineSerial(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run("n="+itoa(n), func(b *testing.B) { benchEngineRun(b, n, false) })
	}
}

func BenchmarkEngineParallel(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run("n="+itoa(n), func(b *testing.B) { benchEngineRun(b, n, true) })
	}
}

// BenchmarkRouteCycleSerial / BenchmarkRouteCycleParallel isolate one
// delivery cycle (no retry loop) on the two engine paths, the hottest unit of
// work in the repository. allocs/op is the tracked figure: the cycle data
// plane is required to reach zero steady-state heap allocation (the first
// iteration warms the engine's scratch arena). Recorded in EXPERIMENTS.md
// under "A4 — allocation-free delivery cycles".
func benchRouteCycle(b *testing.B, n int, parallel bool) {
	ft := fattree.NewUniversal(n, n/4)
	ms := fattree.RandomPermutation(n, 1)
	workers := 1
	if parallel {
		workers = 0 // GOMAXPROCS
	}
	e := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0, fattree.Options{Workers: workers})
	// Warm the scratch arena so the measured loop is steady state.
	e.RunCycle(ms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delivered, res := e.RunCycle(ms)
		if res.Delivered == 0 || len(delivered) != len(ms) {
			b.Fatalf("cycle delivered %d of %d", res.Delivered, len(ms))
		}
	}
}

func BenchmarkRouteCycleSerial(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run("n="+itoa(n), func(b *testing.B) { benchRouteCycle(b, n, false) })
	}
}

func BenchmarkRouteCycleParallel(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run("n="+itoa(n), func(b *testing.B) { benchRouteCycle(b, n, true) })
	}
}

// BenchmarkRouteCycleImplicit isolates one steady-state delivery cycle on
// the implicit-topology streaming engine at scales the materialized engine
// cannot reach in memory. Like RouteCycleSerial it is pinned at 0 allocs/op
// by the CI bench-guard; the retained-footprint half of the contract
// (bytes/endpoint at n = 2^20) is pinned by TestSoakImplicitHugeBoundedMemory
// and recorded in EXPERIMENTS.md §A6.
func BenchmarkRouteCycleImplicit(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 20} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			ft := fattree.NewImplicitUniversal(n, n/4)
			ms := fattree.Random(n, n/64, 1)
			e := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0, fattree.Options{Workers: 1})
			// Warm the scratch arena so the measured loop is steady state.
			e.RunCycle(ms)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delivered, res := e.RunCycle(ms)
				if res.Delivered == 0 || len(delivered) != len(ms) {
					b.Fatalf("cycle delivered %d of %d", res.Delivered, len(ms))
				}
			}
		})
	}
}

// BenchmarkServeRoute measures the steady-state request path of the
// multi-tenant daemon: queue accounting, span pushes, one RunServe call on a
// warmed persistent engine with its observer attached, and the RED merge —
// exactly the work cmd/ftserve performs per /v1/route request after dequeue.
// allocs/op is the tracked figure and must stay at 0 (pinned here by the CI
// bench-guard and by TestServeRouteAllocs in cmd/ftserve).
func BenchmarkServeRoute(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			ft := fattree.NewUniversal(n, n/4)
			obs := fattree.NewObserver(ft)
			eng := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 1,
				fattree.Options{Workers: 1, Observer: obs})
			red := fattree.NewRED()
			spans := fattree.NewSpanRing(4096)
			ms := fattree.RandomPermutation(n, 1)
			// Warm the scratch arena so the measured loop is steady state.
			eng.RunServe(ms)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trace := uint64(i + 1)
				enq := spans.Now()
				red.QueueEnter()
				deq := spans.Now()
				red.QueueExit((deq - enq) / 1000)
				spans.Push(fattree.Span{
					Trace: trace, Kind: fattree.SpanQueue, Start: enq, Dur: deq - enq,
				})
				st := eng.RunServe(ms)
				end := spans.Now()
				if st.Delivered != len(ms) {
					b.Fatalf("request delivered %d of %d", st.Delivered, len(ms))
				}
				red.ObserveRequest(int64(st.Cycles), (end-deq)/1000, trace, false)
				spans.Push(fattree.Span{
					Trace: trace, Kind: fattree.SpanEngine, Start: deq, Dur: end - deq,
					Cycles: int32(st.Cycles), Msgs: int32(len(ms)),
				})
			}
		})
	}
}

// BenchmarkOffLineSchedule tracks the Theorem 1 scheduler's allocation
// behaviour alongside its speed at the three standard sizes. The schedule is
// produced by a warmed reusable Scheduler — the steady state of any caller
// that schedules more than once — so allocs/op is required to stay at zero
// (pinned by TestOffLineScheduleAllocs and the CI bench-guard).
func BenchmarkOffLineSchedule(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		ft := fattree.NewUniversal(n, n/4)
		ms := fattree.Random(n, 4*n, 1)
		b.Run("n="+itoa(n), func(b *testing.B) {
			sc := fattree.NewScheduler(ft)
			// Warm the scratch arena so the measured loop is steady state.
			sc.OffLine(ms)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := sc.OffLine(ms)
				if s.Length() == 0 {
					b.Fatal("empty schedule")
				}
			}
		})
	}
}

func BenchmarkEngineCycle(b *testing.B) {
	ft := fattree.NewUniversal(256, 64)
	ms := fattree.RandomPermutation(256, 1)
	e := fattree.NewEngine(ft, fattree.SwitchIdeal, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fattree.RunOnline(e, ms)
	}
}

func BenchmarkDeliverHypercube(b *testing.B) {
	net := fattree.NewHypercube(256)
	ms := fattree.BitReversal(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := fattree.DeliverOnNetwork(net, ms)
		if r.Cycles == 0 {
			b.Fatal("no cycles")
		}
	}
}

func BenchmarkTheorem10Pipeline(b *testing.B) {
	net := fattree.NewHypercube(64)
	ms := fattree.RandomPermutation(64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := fattree.SimulateOnFatTree(net, ms, 1)
		if r.FatTreeCycles == 0 {
			b.Fatal("no cycles")
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
