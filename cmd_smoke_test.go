package fattree_test

import (
	"os/exec"
	"strings"
	"testing"
)

// Smoke tests for the command-line tools and example programs: each is run
// end-to-end via `go run` at small sizes, and its output is checked for the
// landmark lines. Skipped under -short (each invocation pays a build).

// runGo executes `go run <target> <args...>` and returns combined output.
func runGo(t *testing.T, target string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", target}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %v: %v\n%s", target, args, err, out)
	}
	return string(out)
}

func TestSmokeCmds(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	cases := []struct {
		target string
		args   []string
		want   []string
	}{
		{"./cmd/fttopo", []string{"-n", "64", "-w", "16"},
			[]string{"universal fat-tree", "silhouette", "Hardware cost"}},
		{"./cmd/ftsim", []string{"-n", "64", "-w", "16", "-workload", "bitrev", "-policy", "offline", "-viz"},
			[]string{"schedule:", "delivered 56/56", "0 drops", "occupancy"}},
		{"./cmd/ftsim", []string{"-n", "32", "-workload", "perm", "-policy", "online"},
			[]string{"delivered", "bit-serial"}},
		{"./cmd/ftbench", []string{"-quick", "-run", "E1"},
			[]string{"E1", "Per-level channel capacities", "suite complete"}},
		{"./cmd/ftbench", []string{"-quick", "-run", "E12", "-json"},
			[]string{`"id": "E12"`, `"rows"`}},
		{"./cmd/ftbench", []string{"-list"},
			[]string{"E1", "E25", "A2"}},
		{"./cmd/ftbench", []string{"-quick", "-parallel", "-run", "E1,E12"},
			[]string{"E1", "E12", "suite complete"}},
		{"./cmd/fttrace", []string{"-trace", "fft", "-n", "64"},
			[]string{"per-phase cost", "total:"}},
		{"./cmd/fttrace", []string{"-trace", "multigrid", "-k", "8"},
			[]string{"smooth 8x8", "prolong"}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.Join(append([]string{c.target}, c.args...), " "), func(t *testing.T) {
			t.Parallel()
			out := runGo(t, c.target, c.args...)
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Errorf("missing %q in output:\n%s", want, out)
				}
			}
		})
	}
}

func TestSmokeExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	cases := []struct {
		target string
		want   string
	}{
		{"./examples/quickstart", "0 drops"},
		{"./examples/finiteelement", "bisection width"},
		{"./examples/netsim", "Theorem 10"},
		{"./examples/permutation", "Beneš"},
		{"./examples/apps", "fft"},
		{"./examples/io", "overlapped"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.target, func(t *testing.T) {
			t.Parallel()
			out := runGo(t, c.target)
			if !strings.Contains(out, c.want) {
				t.Errorf("missing %q in output:\n%s", c.want, out)
			}
		})
	}
}
