package fattree_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// Smoke tests for the command-line tools and example programs: each is run
// end-to-end via `go run` at small sizes, and its output is checked for the
// landmark lines. Skipped under -short (each invocation pays a build).

// runGo executes `go run <target> <args...>` and returns combined output.
func runGo(t *testing.T, target string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", target}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %v: %v\n%s", target, args, err, out)
	}
	return string(out)
}

func TestSmokeCmds(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	cases := []struct {
		target string
		args   []string
		want   []string
	}{
		{"./cmd/fttopo", []string{"-n", "64", "-w", "16"},
			[]string{"universal fat-tree", "silhouette", "Hardware cost"}},
		{"./cmd/ftsim", []string{"-n", "64", "-w", "16", "-workload", "bitrev", "-policy", "offline", "-viz"},
			[]string{"schedule:", "delivered 56/56", "0 drops", "occupancy"}},
		{"./cmd/ftsim", []string{"-n", "32", "-workload", "perm", "-policy", "online"},
			[]string{"delivered", "bit-serial"}},
		{"./cmd/ftsim", []string{"-n", "32", "-workload", "perm", "-policy", "online", "-switches", "partial", "-hist"},
			[]string{"delivery latency (cycles)", "per-level utilization", "p99<="}},
		{"./cmd/ftbench", []string{"-quick", "-run", "E1"},
			[]string{"E1", "Per-level channel capacities", "suite complete"}},
		{"./cmd/ftbench", []string{"-quick", "-run", "E12", "-json"},
			[]string{`"id": "E12"`, `"rows"`}},
		{"./cmd/ftbench", []string{"-list"},
			[]string{"E1", "E25", "A2"}},
		{"./cmd/ftbench", []string{"-quick", "-parallel", "-run", "E1,E12"},
			[]string{"E1", "E12", "suite complete"}},
		{"./cmd/ftsim", []string{"-kary", "8,4;2,1;1,2", "-workload", "random", "-policy", "online"},
			[]string{"k-ary 8,4;2,1;1,2", "delivered 128/128"}},
		{"./cmd/ftdesign", []string{"-n", "1024", "-radix", "36", "-budget", "60000"},
			[]string{"best: 3-tier", "one-cycle λ check: PASS"}},
		{"./cmd/ftdesign", []string{"-n", "64", "-radix", "10", "-budget", "4000", "-oversub", "2", "-all"},
			[]string{"within budget", "one-cycle λ check: PASS"}},
		{"./cmd/fttrace", []string{"-trace", "fft", "-n", "64"},
			[]string{"per-phase cost", "total:"}},
		{"./cmd/fttrace", []string{"-trace", "multigrid", "-k", "8"},
			[]string{"smooth 8x8", "prolong"}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.Join(append([]string{c.target}, c.args...), " "), func(t *testing.T) {
			t.Parallel()
			out := runGo(t, c.target, c.args...)
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Errorf("missing %q in output:\n%s", want, out)
				}
			}
		})
	}
}

var (
	buildCLIsOnce sync.Once
	builtCLIDir   string
	buildCLIsErr  error
	buildCLIsOut  string
)

// builtCLI compiles every cmd/ binary once per test process (go run cannot
// be used here: it collapses every nonzero child exit into its own exit 1)
// and returns the path of the named one.
func builtCLI(t *testing.T, name string) string {
	t.Helper()
	buildCLIsOnce.Do(func() {
		builtCLIDir, buildCLIsErr = os.MkdirTemp("", "fattree-cli")
		if buildCLIsErr != nil {
			return
		}
		out, err := exec.Command("go", "build", "-o", builtCLIDir, "./cmd/...").CombinedOutput()
		buildCLIsErr, buildCLIsOut = err, string(out)
	})
	if buildCLIsErr != nil {
		t.Fatalf("building CLIs: %v\n%s", buildCLIsErr, buildCLIsOut)
	}
	return filepath.Join(builtCLIDir, name)
}

// runCLIExit executes one built CLI binary and returns its exit code with
// combined output.
func runCLIExit(t *testing.T, name string, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(builtCLI(t, name), args...).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return exit.ExitCode(), string(out)
}

// TestCLIExitCodes pins the exit-code convention shared by every CLI:
// 0 success, 1 runtime failure, 2 usage error (ftlint's "runtime failure"
// is diagnostics reported — a clean lint is its success).
func TestCLIExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	cases := []struct {
		name string
		bin  string
		args []string
		want int
	}{
		// Usage errors: malformed or unknown flag values exit 2.
		{"ftsim bad n", "ftsim", []string{"-n", "63"}, 2},
		{"ftsim unknown workload", "ftsim", []string{"-n", "16", "-workload", "nope"}, 2},
		{"ftsim unknown policy", "ftsim", []string{"-n", "16", "-policy", "nope"}, 2},
		{"ftsim unknown switches", "ftsim", []string{"-n", "16", "-switches", "nope"}, 2},
		{"ftsim bad trace cap", "ftsim", []string{"-n", "16", "-trace-out", "t.json", "-trace-cap", "0"}, 2},
		{"ftsim unknown profile", "ftsim", []string{"-n", "16", "-profile", "heap"}, 2},
		{"ftbench unknown experiment", "ftbench", []string{"-run", "NOPE"}, 2},
		{"ftbench unknown profile", "ftbench", []string{"-list", "-profile", "heap"}, 2},
		{"fttopo bad n", "fttopo", []string{"-n", "63"}, 2},
		{"fttopo w and volume", "fttopo", []string{"-n", "64", "-w", "16", "-volume", "100"}, 2},
		{"fttrace unknown trace", "fttrace", []string{"-trace", "nope"}, 2},
		{"ftlint unknown analyzer", "ftlint", []string{"-only", "nope", "./..."}, 2},
		{"ftserve bad n", "ftserve", []string{"-n", "63"}, 2},
		{"ftserve unknown workload", "ftserve", []string{"-workloads", "nope"}, 2},
		{"ftserve unknown policy", "ftserve", []string{"-policy", "offline"}, 2},
		{"ftserve transpose odd lg", "ftserve", []string{"-n", "32", "-workloads", "transpose"}, 2},
		{"ftserve positional args", "ftserve", []string{"extra"}, 2},
		{"ftserve bad tenant name", "ftserve", []string{"-n", "16", "-tenants", "alpha,bad name"}, 2},
		{"ftserve duplicate tenants", "ftserve", []string{"-n", "16", "-tenants", "alpha,alpha"}, 2},
		{"ftserve tenants need one size", "ftserve", []string{"-n", "16,64", "-tenants", "alpha"}, 2},
		{"ftserve bad queue", "ftserve", []string{"-n", "16", "-tenants", "alpha", "-queue", "0"}, 2},
		{"ftserve bad span cap", "ftserve", []string{"-n", "16", "-tenants", "alpha", "-span-cap", "0"}, 2},
		{"ftload no tenants", "ftload", []string{"-requests", "10"}, 2},
		{"ftload no stop condition", "ftload", []string{"-tenants", "alpha"}, 2},
		{"ftload bad concurrency", "ftload", []string{"-tenants", "alpha", "-requests", "1", "-concurrency", "0"}, 2},
		{"ftload bad batch", "ftload", []string{"-tenants", "alpha", "-requests", "1", "-batch", "0"}, 2},
		{"ftload positional args", "ftload", []string{"-tenants", "alpha", "-requests", "1", "extra"}, 2},
		{"ftbench hist without bench", "ftbench", []string{"-hist"}, 2},
		{"ftdesign bad n", "ftdesign", []string{"-n", "0", "-radix", "36", "-budget", "100"}, 2},
		{"ftdesign bad oversub", "ftdesign", []string{"-n", "64", "-radix", "36", "-budget", "100", "-oversub", "0.5"}, 2},
		{"ftdesign infeasible budget", "ftdesign", []string{"-n", "1024", "-radix", "36", "-budget", "1"}, 2},
		{"ftdesign infeasible radix", "ftdesign", []string{"-n", "1022", "-radix", "6", "-budget", "99999"}, 2},
		{"ftsim kary with implicit", "ftsim", []string{"-kary", "4,4;1,1;1,1", "-implicit"}, 2},
		{"ftsim kary bad descriptor", "ftsim", []string{"-kary", "4;1;1;1;1"}, 2},
		{"ftsim kary offline policy", "ftsim", []string{"-kary", "4,4;1,1;1,1", "-policy", "offline"}, 2},
		{"ftsim kary partial switches", "ftsim", []string{"-kary", "4,4;1,1;1,1", "-switches", "partial"}, 2},
		{"ftbenchdiff no args", "ftbenchdiff", nil, 2},
		{"ftbenchdiff bad threshold", "ftbenchdiff", []string{"-threshold", "-1", "a.json", "b.json"}, 2},

		// Runtime failures exit 1.
		{"ftsim missing schedule", "ftsim", []string{"-n", "16", "-load-schedule", "/nonexistent/s.json"}, 1},
		{"ftload unreachable server", "ftload", []string{"-addr", "127.0.0.1:9", "-tenants", "alpha",
			"-requests", "2", "-scrape", "0", "-timeout", "2s"}, 1},
		{"ftserve unlistenable addr", "ftserve", []string{"-addr", "256.256.256.256:0", "-runs", "1"}, 1},
		{"ftbenchdiff missing file", "ftbenchdiff", []string{"/nonexistent/a.json", "/nonexistent/b.json"}, 1},

		// Success exits 0.
		{"ftsim counters run", "ftsim", []string{"-n", "16", "-policy", "online", "-counters"}, 0},
		{"ftdesign good spec", "ftdesign", []string{"-n", "1024", "-radix", "36", "-budget", "60000"}, 0},
		{"ftsim kary greedy", "ftsim", []string{"-kary", "3,4;1,1;2,1", "-workload", "reversal", "-policy", "greedy"}, 0},
		{"ftserve bounded run", "ftserve", []string{"-addr", "127.0.0.1:0", "-n", "16", "-runs", "2"}, 0},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			got, out := runCLIExit(t, c.bin, c.args...)
			if got != c.want {
				t.Errorf("%s %v: exit %d, want %d\noutput:\n%s", c.bin, c.args, got, c.want, out)
			}
		})
	}
}

// TestSmokeTraceOut runs a real simulation with -trace-out/-trace-jsonl and
// verifies the chrome://tracing file is loadable — valid JSON whose
// traceEvents all carry the mandatory ph field — and that every JSONL line
// decodes to an event with a kind.
func TestSmokeTraceOut(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	jsonl := filepath.Join(dir, "trace.jsonl")
	out := runGo(t, "./cmd/ftsim",
		"-n", "32", "-policy", "online", "-counters",
		"-trace-out", trace, "-trace-jsonl", jsonl)
	for _, want := range []string{"observed", "chrome trace written", "event stream written"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}

	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid *int   `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "" || ev.Pid == nil {
			t.Fatalf("traceEvents[%d] missing mandatory ph/pid fields", i)
		}
	}

	lines, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(lines)), "\n") {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("jsonl line %d: %v", i+1, err)
		}
		if ev.Kind == "" {
			t.Fatalf("jsonl line %d has no kind", i+1)
		}
	}
}

// TestSmokeTenantDrain drives the multi-tenant daemon end-to-end with the
// built binaries: ftserve starts in tenant mode on an ephemeral port, ftload
// pushes a bounded run of batched requests through /v1/route with every gate
// armed (conservation scrapes, exposition validation, the p99 SLO), and
// SIGTERM then drains the daemon to a clean exit 0.
func TestSmokeTenantDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	serve := exec.Command(builtCLI(t, "ftserve"),
		"-addr", "127.0.0.1:0", "-n", "16", "-tenants", "alpha,beta", "-queue", "64")
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve.Process.Kill() // backstop for early t.Fatal paths; no-op after Wait

	// The first stdout line announces the listen address:
	//   ftserve: serving /v1/route on http://127.0.0.1:PORT (tree 16, ...)
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("ftserve produced no output: %v", sc.Err())
	}
	first := sc.Text()
	i, j := strings.Index(first, "http://"), strings.Index(first, " (")
	if i < 0 || j < i {
		t.Fatalf("cannot parse listen address from %q", first)
	}
	addr := first[i:j]

	// Drain the rest of stdout concurrently; the shutdown message lands here.
	var outMu sync.Mutex
	var output strings.Builder
	output.WriteString(first + "\n")
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		for sc.Scan() {
			outMu.Lock()
			output.WriteString(sc.Text() + "\n")
			outMu.Unlock()
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("ftserve never became ready at %s", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}

	code, out := runCLIExit(t, "ftload",
		"-addr", addr, "-tenants", "alpha,beta", "-requests", "400",
		"-batch", "25", "-concurrency", "4", "-scrape", "200ms", "-slo-p99", "10s")
	if code != 0 {
		t.Fatalf("ftload exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "all gates passed") {
		t.Errorf("ftload output missing gate verdict:\n%s", out)
	}

	if err := serve.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-scanDone:
	case <-time.After(10 * time.Second):
		t.Fatal("ftserve did not exit within 10s of SIGTERM")
	}
	if err := serve.Wait(); err != nil {
		t.Fatalf("ftserve exited non-zero after SIGTERM: %v", err)
	}
	outMu.Lock()
	got := output.String()
	outMu.Unlock()
	if !strings.Contains(got, "signal received, shutting down") {
		t.Errorf("missing graceful-drain message in ftserve output:\n%s", got)
	}
}

func TestSmokeExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test")
	}
	cases := []struct {
		target string
		want   string
	}{
		{"./examples/quickstart", "0 drops"},
		{"./examples/finiteelement", "bisection width"},
		{"./examples/netsim", "Theorem 10"},
		{"./examples/permutation", "Beneš"},
		{"./examples/apps", "fft"},
		{"./examples/io", "overlapped"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.target, func(t *testing.T) {
			t.Parallel()
			out := runGo(t, c.target)
			if !strings.Contains(out, c.want) {
				t.Errorf("missing %q in output:\n%s", c.want, out)
			}
		})
	}
}
