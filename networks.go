package fattree

import (
	"fattree/internal/baseline"
	"fattree/internal/decomp"
	"fattree/internal/universal"
)

// This file re-exports the competing networks, the Section V decomposition
// machinery, and the Theorem 10 universality pipeline.

// Network is a fixed-connection routing network (hypercube, mesh, ...).
type Network = baseline.Network

// NetworkResult summarizes a store-and-forward delivery on a baseline
// network.
type NetworkResult = baseline.Result

// NewHypercube builds the Boolean hypercube on n = 2^d processors.
func NewHypercube(n int) Network { return baseline.NewHypercube(n) }

// NewMesh builds the k×k two-dimensional mesh (n = k²).
func NewMesh(n int) Network { return baseline.NewMesh(n) }

// NewBinaryTree builds the plain binary tree network.
func NewBinaryTree(n int) Network { return baseline.NewBinaryTree(n) }

// NewButterfly builds the d-dimensional butterfly (n = 2^d rows).
func NewButterfly(n int) Network { return baseline.NewButterfly(n) }

// NewShuffleExchange builds Stone's shuffle-exchange network.
func NewShuffleExchange(n int) Network { return baseline.NewShuffleExchange(n) }

// NewCCC builds the cube-connected cycles on n = d·2^d processors (24, 64,
// 160, 384, ...), the constant-degree hypercube substitute behind Galil and
// Paul's general-purpose parallel computer.
func NewCCC(n int) Network { return baseline.NewCCC(n) }

// NewTorus builds the k×k two-dimensional torus (n = k²).
func NewTorus(n int) Network { return baseline.NewTorus(n) }

// NewMesh3D builds the k×k×k three-dimensional array (n = k³) — the direct
// network that exploits the 3-D VLSI model most fully, with bisection
// Θ(n^(2/3)) in Θ(n) volume.
func NewMesh3D(n int) Network { return baseline.NewMesh3D(n) }

// NewFatTreeNetwork exposes a fat-tree as a fixed-connection Network, so
// Theorem 10 can simulate fat-trees on fat-trees.
func NewFatTreeNetwork(ft *FatTree) Network { return baseline.NewFatTreeNetwork(ft) }

// NewClos builds the k-ary folded-Clos fat-tree of modern datacenters on
// n = k³/4 processors (16, 54, 128, 250, 432, 1024, ...): full bisection
// from constant-radix switches — the paper's architectural descendant.
func NewClos(n int) Network { return baseline.NewClos(n) }

// NewClosECMP is NewClos with randomized (equal-cost multipath) upward path
// selection, seeded for reproducibility.
func NewClosECMP(n int, seed int64) Network { return baseline.NewClosECMP(n, seed) }

// DeliverOnNetwork simulates store-and-forward delivery of ms on net with
// unit-capacity links.
func DeliverOnNetwork(net Network, ms MessageSet) NetworkResult {
	return baseline.Deliver(net, ms)
}

// Decomposition machinery (Section V).
type (
	// Layout is a physical placement of processors in a cube.
	Layout = decomp.Layout
	// Point is a 3-D position.
	Point = decomp.Point
	// DecompTree is a [w0..wr] decomposition tree with leaves on a line.
	DecompTree = decomp.Tree
	// BalancedNode is a node of a balanced decomposition tree (Theorem 8).
	BalancedNode = decomp.BNode
	// Interval is a run of consecutive decomposition-tree leaves.
	Interval = decomp.Interval
)

// GridLayout places n processors on a grid filling a cube of the given
// volume.
func GridLayout(n int, volume float64) *Layout { return decomp.GridLayout(n, volume) }

// CutPlanes builds the Theorem 5 decomposition tree of a layout.
func CutPlanes(l *Layout, gamma float64) *DecompTree { return decomp.CutPlanes(l, gamma) }

// CutLines is the 2-D (planar) analog of CutPlanes: alternating cut lines,
// bandwidth proportional to perimeter, per-level ratio sqrt(2).
func CutLines(l *Layout, gamma float64) *DecompTree { return decomp.CutLines(l, gamma) }

// GridLayout2D places n processors on a grid filling a square of the given
// area (a planar layout for CutLines).
func GridLayout2D(n int, area float64) *Layout { return decomp.GridLayout2D(n, area) }

// BalanceDecomposition builds the Theorem 8 balanced decomposition tree.
func BalanceDecomposition(t *DecompTree) *BalancedNode { return decomp.Balance(t) }

// SplitPearls is the Lemma 6 primitive: divide at most two strings of pearls
// into two sets of at most two strings with both colors split to within one.
func SplitPearls(isBlack func(pos int) bool, strs []Interval) (a, b []Interval) {
	return decomp.SplitPearls(isBlack, strs)
}

// MaximalSubtrees is the Lemma 7 primitive: the heights of the maximal
// complete subtrees covering a leaf interval.
func MaximalSubtrees(iv Interval) []int { return decomp.MaximalSubtrees(iv) }

// Universality (Section VI).
type (
	// UniversalityReport is the outcome of a Theorem 10 experiment.
	UniversalityReport = universal.Report
	// ProcessorIdentification maps network processors to fat-tree leaves.
	ProcessorIdentification = universal.Identification
)

// IdentifyProcessors runs layout → decomposition → balancing → leaf
// identification and builds the equal-volume universal fat-tree.
func IdentifyProcessors(net Network, gamma float64) *ProcessorIdentification {
	return universal.Identify(net, gamma)
}

// SimulateOnFatTree runs the full Theorem 10 experiment: deliver ms on the
// network, deliver the identified message set on the equal-volume universal
// fat-tree, and report the slowdown against the lg³ n envelope.
func SimulateOnFatTree(net Network, ms MessageSet, gamma float64) *UniversalityReport {
	return universal.Simulate(net, ms, gamma)
}

// SimulateOnFatTreeOnline is the on-line analog of SimulateOnFatTree: the
// randomized protocol replaces the compiled schedule, against the
// O(lg³ n·lg lg n) envelope of the paper's closing claim.
func SimulateOnFatTreeOnline(net Network, ms MessageSet, gamma float64, seed int64) *UniversalityReport {
	return universal.SimulateOnline(net, ms, gamma, seed)
}

// EmbedFixedConnections schedules one communication step over every link of
// a fixed-connection network on the identified fat-tree.
func EmbedFixedConnections(net Network, gamma float64) (*ProcessorIdentification, *Schedule) {
	return universal.EmbedFixedConnections(net, gamma)
}
