package fattree_test

import (
	"fmt"

	"fattree"
)

// Building a universal fat-tree and reading its capacity profile.
func ExampleNewUniversal() {
	ft := fattree.NewUniversal(64, 16)
	for k := 0; k <= ft.Levels(); k++ {
		fmt.Printf("level %d: %d wires\n", k, ft.CapacityAtLevel(k))
	}
	// Output:
	// level 0: 16 wires
	// level 1: 11 wires
	// level 2: 7 wires
	// level 3: 4 wires
	// level 4: 3 wires
	// level 5: 2 wires
	// level 6: 1 wires
}

// Load factors lower-bound delivery time: the mirror permutation pushes
// everything across the root.
func ExampleLoadFactor() {
	ft := fattree.NewConstant(8, 1)
	ms := fattree.Reversal(8)
	fmt.Printf("λ = %.0f\n", fattree.LoadFactor(ft, ms))
	// Output:
	// λ = 4
}

// Scheduling off-line (Theorem 1) and playing the schedule through the
// simulated switch hardware: nothing is dropped.
func ExampleScheduleOffline() {
	ft := fattree.NewUniversal(64, 16)
	ms := fattree.BitReversal(64)
	s := fattree.ScheduleOffline(ft, ms)
	if err := s.Verify(ms); err != nil {
		panic(err)
	}
	stats := fattree.RunSchedule(fattree.NewEngine(ft, fattree.SwitchIdeal, 0), s)
	fmt.Printf("delivered %d messages in %d cycles with %d drops\n",
		stats.Delivered, stats.Cycles, stats.Drops)
	// Output:
	// delivered 56 messages in 4 cycles with 0 drops
}

// The even-bisection primitive from the proof of Theorem 1: splitting
// root-crossing messages so every channel's load halves.
func ExampleEvenBisect() {
	ft := fattree.NewConstant(8, 1)
	q := fattree.MessageSet{
		{Src: 0, Dst: 4}, {Src: 1, Dst: 5}, {Src: 2, Dst: 6}, {Src: 3, Dst: 7},
	}
	a, b := fattree.EvenBisect(ft, 1, q)
	fmt.Printf("%d + %d messages\n", len(a), len(b))
	// Output:
	// 2 + 2 messages
}

// Hardware cost in the 3-D VLSI model: a fat-tree scaled for planar traffic
// versus a hypercube.
func ExampleUniversalVolume() {
	n := 4096
	planar := fattree.UniversalVolume(n, 256) // w = n^(2/3)
	cube := fattree.HypercubeVolume(n)
	fmt.Printf("fat-tree/hypercube volume = %.2f\n", planar/cube)
	// Output:
	// fat-tree/hypercube volume = 0.13
}

// External I/O through the root interface: throughput scales with the root
// capacity.
func ExampleExternalIO() {
	ft := fattree.NewUniversal(64, 8)
	io := fattree.ExternalIO(64, 16, 16, 1) // 16 reads + 16 writes
	s := fattree.ScheduleOffline(ft, io)
	fmt.Printf("32 I/O messages through a w=8 root: %d cycles\n", s.Length())
	// Output:
	// 32 I/O messages through a w=8 root: 4 cycles
}

// Simulating a hypercube on an equal-volume fat-tree (Theorem 10).
func ExampleSimulateOnFatTree() {
	r := fattree.SimulateOnFatTree(fattree.NewHypercube(64), fattree.BitReversal(64), 1)
	fmt.Printf("within polylog envelope: %v\n", r.Slowdown <= r.PolylogBound)
	// Output:
	// within polylog envelope: true
}

// Running a whole-application trace phase by phase.
func ExampleRunTrace() {
	ft := fattree.NewUniversal(64, 64)
	res := fattree.RunTrace(ft, fattree.FFTTrace(64), 0)
	fmt.Printf("fft on the full-bandwidth tree: %d phases, %d total cycles\n",
		len(res.PerPhase), res.TotalCycles)
	// Output:
	// fft on the full-bandwidth tree: 6 phases, 6 total cycles
}
