// Facade tests for the extension surface: 2-D family, open-loop operation,
// schedule serialization, buffered delivery, ECMP Clos, traces, faults.
package fattree_test

import (
	"bytes"
	"testing"

	"fattree"
)

func TestFacade2DFamily(t *testing.T) {
	ft := fattree.NewUniversal2D(256, 16)
	if ft.RootCapacity() != 16 {
		t.Errorf("2-D root capacity %d", ft.RootCapacity())
	}
	if fattree.Universal2DCapacity(256, 16, 2) < fattree.UniversalCapacity(256, 16, 2) {
		t.Errorf("2-D profile should dominate 3-D level by level for equal w")
	}
	if fattree.UniversalArea(256, 16) != 16*4*16*4 {
		t.Errorf("area formula wrong: %v", fattree.UniversalArea(256, 16))
	}
	if w := fattree.RootCapacityForArea(256, fattree.MeshArea(256)); w < 1 || w > 256 {
		t.Errorf("area inversion out of range: %d", w)
	}
	l := fattree.GridLayout2D(64, 256)
	dt := fattree.CutLines(l, 1)
	if dt.Procs() != 64 {
		t.Errorf("cut-lines tree procs %d", dt.Procs())
	}
	if fattree.NewUniversal2DOfArea(64, 64).Processors() != 64 {
		t.Errorf("area constructor wrong")
	}
}

func TestFacadeOpenLoop(t *testing.T) {
	ft := fattree.NewUniversal(64, 16)
	e := fattree.NewEngine(ft, fattree.SwitchIdeal, 0)
	stats := fattree.RunOpenLoop(e, fattree.UniformArrivals(ft, 4, 1), 50, 2)
	if stats.Delivered+stats.Backlog != stats.Offered {
		t.Errorf("conservation violated: %+v", stats)
	}
}

func TestFacadeScheduleSerialization(t *testing.T) {
	ft := fattree.NewUniversal(32, 8)
	ms := fattree.RandomPermutation(32, 1)
	s := fattree.ScheduleOffline(ft, ms)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("%v", err)
	}
	loaded, err := fattree.ReadSchedule(&buf, ft)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if err := loaded.Verify(ms); err != nil {
		t.Fatalf("%v", err)
	}
}

func TestFacadeBufferedAndCompact(t *testing.T) {
	ft := fattree.NewUniversal(64, 16)
	ms := fattree.Random(64, 200, 3)
	buf := fattree.RunBuffered(ft, ms, 4)
	if buf.Delivered != len(ms) {
		t.Fatalf("buffered incomplete: %+v", buf)
	}
	s := fattree.ScheduleOfflineCompact(ft, ms)
	if err := s.Verify(ms); err != nil {
		t.Fatalf("%v", err)
	}
	if s.Utilization() <= 0 {
		t.Errorf("utilization %v", s.Utilization())
	}
	par := fattree.ScheduleOfflineParallel(ft, ms)
	if par.Length() != fattree.ScheduleOffline(ft, ms).Length() {
		t.Errorf("parallel schedule diverges")
	}
}

func TestFacadeECMPAndNetworks(t *testing.T) {
	for _, net := range []fattree.Network{
		fattree.NewClos(16),
		fattree.NewClosECMP(16, 1),
		fattree.NewTorus(16),
		fattree.NewMesh3D(64),
		fattree.NewCCC(24),
		fattree.NewFatTreeNetwork(fattree.NewUniversal(32, 8)),
	} {
		ms := fattree.RandomPermutation(net.Procs(), 2)
		res := fattree.DeliverOnNetwork(net, ms)
		if res.Cycles == 0 && len(ms) > 0 {
			t.Errorf("%s: no cycles", net.Name())
		}
	}
}

func TestFacadeFaultsAndOnline(t *testing.T) {
	ft := fattree.NewUniversal(64, 16)
	e := fattree.NewEngine(ft, fattree.SwitchIdeal, 0)
	e.InjectLoss(0.05, 1)
	ms := fattree.RandomPermutation(64, 4)
	stats := fattree.RunOnlineRandom(e, ms, 5)
	if stats.Delivered != len(ms) {
		t.Fatalf("lossy online incomplete: %+v", stats)
	}
	if fattree.OnlineBound(ft, 10, 2) <= 20 {
		t.Errorf("online bound too small")
	}
}

func TestFacadeTicksExtras(t *testing.T) {
	ft := fattree.NewUniversal(64, 16)
	ms := fattree.Random(64, 100, 7)
	s := fattree.ScheduleOffline(ft, ms)
	serial := fattree.ScheduleTicks(ft, s.Cycles, 8)
	piped := fattree.PipelinedScheduleTicks(ft, s.Cycles, 8)
	if piped > serial {
		t.Errorf("pipelined %d > serial %d", piped, serial)
	}
}
