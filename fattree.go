// Package fattree is a library implementation of Charles E. Leiserson's
// fat-tree routing networks ("Fat-Trees: Universal Networks for
// Hardware-Efficient Supercomputing", IEEE Transactions on Computers C-34(10),
// 1985). It provides:
//
//   - fat-tree topologies with arbitrary or universal channel-capacity
//     profiles, message sets, routing paths, and load factors (Section II–III);
//   - the off-line schedulers of Theorem 1 and Corollary 2, built on the
//     matching-and-tracing even-bisection primitive;
//   - concentrator switches and a delivery-cycle simulator that drives the
//     Fig. 3 node hardware, with the Fig. 2 bit-serial timing model;
//   - the three-dimensional VLSI cost model of Section IV (component counts,
//     node boxes, universal fat-tree volume, volume→root-capacity inversion);
//   - decomposition trees, strings-of-pearls partitioning, and balanced
//     decomposition trees (Section V);
//   - the Theorem 10 universality pipeline, with hypercube, mesh, butterfly,
//     shuffle-exchange, and binary-tree baselines;
//   - workload generators for the traffic classes the paper discusses.
//
// This root package is a facade over the internal implementation packages;
// everything a downstream user needs is re-exported here. See the runnable
// programs under examples/ for end-to-end usage.
package fattree

import (
	"io"

	"fattree/internal/concentrator"
	"fattree/internal/core"
	"fattree/internal/obsv"
	"fattree/internal/sched"
	"fattree/internal/sim"
)

// Core topology types.
type (
	// Topology is the interface the scheduler, simulator, and observability
	// layers program against: a materialized FatTree or a computed
	// ImplicitFatTree, identical by construction.
	Topology = core.Topology
	// FatTree is a materialized fat-tree routing network on n = 2^L
	// processors, with a flat per-node capacity table.
	FatTree = core.FatTree
	// ImplicitFatTree is the computed fat-tree: the same geometry in
	// O(levels) memory, with no per-node storage. The simulation engine
	// recognizes it and streams flight state through subtree shards, so
	// 2^20-endpoint networks simulate in bounded memory.
	ImplicitFatTree = core.ImplicitFatTree
	// KaryFatTree is the generalized k-ary fat-tree: per-tier down/up/
	// parallel descriptors with arbitrary radix and oversubscription. The
	// simulation engine routes it with inline ideal concentrators; the
	// Theorem 1 scheduler requires a binary tree (use ScheduleGreedy).
	KaryFatTree = core.KaryFatTree
	// KaryDesc is a k-ary fat-tree descriptor: tier i (0 = the root tier)
	// fans every level-i node out to Down[i] children, each reached by a
	// channel of Up[i]×Parallel[i] wires.
	KaryDesc = core.KaryDesc
	// Message is a point-to-point message (source, destination).
	Message = core.Message
	// MessageSet is a multiset of messages.
	MessageSet = core.MessageSet
	// Channel identifies one directed channel (node, direction).
	Channel = core.Channel
	// Direction is Up (toward the root) or Down.
	Direction = core.Direction
	// Loads tabulates per-channel message loads.
	Loads = core.Loads
)

// Channel directions.
const (
	Up   = core.Up
	Down = core.Down
)

// New builds a fat-tree on n processors with capacity capAt(level) at each
// level (0 = root channel, lg n = leaf channels).
func New(n int, capAt func(level int) int) *FatTree { return core.New(n, capAt) }

// NewUniversal builds a universal fat-tree on n processors with root capacity
// w, using the Section IV capacity profile (doubling near the leaves,
// 4^(1/3) growth near the root).
func NewUniversal(n, w int) *FatTree { return core.NewUniversal(n, w) }

// NewConstant builds a fat-tree with capacity c on every channel (c = 1 is
// the plain binary tree).
func NewConstant(n, c int) *FatTree { return core.NewConstant(n, c) }

// NewDoubling builds the pure-doubling profile cap_k = ceil(n/2^k), the
// ablation profile that ignores the 3-D volume constraint near the root.
func NewDoubling(n int) *FatTree { return core.NewDoubling(n) }

// NewUniversal2D builds an area-universal fat-tree (the two-dimensional
// Thompson-model analog): capacities grow at 2^(1/2) per level near the root.
func NewUniversal2D(n, w int) *FatTree { return core.NewUniversal2D(n, w) }

// Universal2DCapacity returns the area-universal channel capacity at a level.
func Universal2DCapacity(n, w, level int) int { return core.Universal2DCapacity(n, w, level) }

// UniversalCapacity returns the Section IV channel capacity at a level of a
// universal fat-tree with n processors and root capacity w.
func UniversalCapacity(n, w, level int) int { return core.UniversalCapacity(n, w, level) }

// NewImplicit builds an implicit (computed, O(levels)-memory) fat-tree on n
// processors with capacity capAt(level) at each level.
func NewImplicit(n int, capAt func(level int) int) *ImplicitFatTree {
	return core.NewImplicit(n, capAt)
}

// NewImplicitUniversal is NewUniversal's implicit counterpart.
func NewImplicitUniversal(n, w int) *ImplicitFatTree { return core.NewImplicitUniversal(n, w) }

// NewImplicitConstant is NewConstant's implicit counterpart.
func NewImplicitConstant(n, c int) *ImplicitFatTree { return core.NewImplicitConstant(n, c) }

// NewImplicitDoubling is NewDoubling's implicit counterpart.
func NewImplicitDoubling(n int) *ImplicitFatTree { return core.NewImplicitDoubling(n) }

// NewKary builds a generalized k-ary fat-tree from a per-tier descriptor; n
// is the product of the Down fan-outs. Validation is up-front, as in New.
func NewKary(d KaryDesc) *KaryFatTree { return core.NewKary(d) }

// NewLoads computes per-channel loads of ms on t.
func NewLoads(t Topology, ms MessageSet) *Loads { return core.NewLoads(t, ms) }

// LoadFactor returns λ(M) — the paper's lower bound on delivery cycles.
func LoadFactor(t Topology, ms MessageSet) float64 { return core.LoadFactor(t, ms) }

// IsOneCycle reports whether ms respects every channel capacity and can
// therefore be delivered in a single delivery cycle.
func IsOneCycle(t Topology, ms MessageSet) bool { return core.IsOneCycle(t, ms) }

// Lg is the paper's lg: max(1, ceil(log2 x)).
func Lg(x int) int { return core.Lg(x) }

// External is the pseudo-processor denoting the outside world: a message
// with Src or Dst External crosses the root channel, the fat-tree's
// "natural high-bandwidth external connection".
const External = core.External

// Concat concatenates message sets.
func Concat(sets ...MessageSet) MessageSet { return core.Concat(sets...) }

// Scheduling.
type (
	// Schedule is a partition of a message set into one-cycle message sets.
	Schedule = sched.Schedule
	// Scheduler is a reusable, allocation-free Theorem 1 scheduler bound to
	// one fat-tree: a warmed Scheduler runs OffLine/OffLineCompact at zero
	// steady-state allocations. Schedules it returns are loans from its
	// arena, valid until the next call; use Schedule.Clone to keep one.
	Scheduler = sched.Scheduler
)

// NewScheduler builds a reusable Theorem 1 scheduler for t. Loops that
// schedule many message sets on one tree should hold a Scheduler and call its
// methods; the package-level ScheduleOffline* functions construct a fresh one
// per call.
func NewScheduler(t Topology) *Scheduler { return sched.NewScheduler(t) }

// ScheduleOffline runs the Theorem 1 off-line scheduler:
// d = O(λ(M)·lg n) delivery cycles on any fat-tree.
func ScheduleOffline(t Topology, ms MessageSet) *Schedule { return sched.OffLine(t, ms) }

// ScheduleOfflineBig runs the Corollary 2 scheduler: on fat-trees whose
// channels all have capacity at least α·lg n it uses at most
// 2(α/(α-1))·λ(M) delivery cycles; on other fat-trees it remains correct but
// falls back to Theorem 1 for the overflow.
func ScheduleOfflineBig(t Topology, ms MessageSet) *Schedule { return sched.OffLineBig(t, ms) }

// ScheduleGreedy is the first-fit baseline scheduler (no bound).
func ScheduleGreedy(t Topology, ms MessageSet) *Schedule { return sched.Greedy(t, ms) }

// EvenBisect splits a set of messages crossing node v (all in the same
// direction) into halves whose load differs by at most one on every channel —
// the matching-and-tracing primitive from the proof of Theorem 1.
func EvenBisect(t Topology, v int, q MessageSet) (a, b MessageSet) {
	return sched.EvenBisect(t, v, q)
}

// Simulation.
type (
	// Engine is the delivery-cycle simulator driving concentrator switches.
	// Engines route delivery cycles serially or level-parallel (see Options
	// and Engine.RunParallel); the two paths are bit-identical.
	Engine = sim.Engine
	// Options configures an engine; Workers bounds the concurrency of the
	// parallel delivery-cycle path (0 = GOMAXPROCS, 1 = serial). Results are
	// identical for every worker count.
	Options = sim.Options
	// Stats summarizes a delivery run.
	Stats = sim.Stats
	// SwitchKind selects ideal or partial concentrators.
	SwitchKind = concentrator.Kind
)

// Switch kinds.
const (
	SwitchIdeal   = concentrator.KindIdeal
	SwitchPartial = concentrator.KindPartial
)

// NewEngine builds a delivery-cycle simulator for t with the given switch
// kind, using up to GOMAXPROCS workers per delivery cycle.
func NewEngine(t Topology, kind SwitchKind, seed int64) *Engine { return sim.New(t, kind, seed) }

// NewEngineWithOptions is NewEngine with an explicit worker bound. Use
// Options{Workers: 1} to pin the serial reference path; any other value
// produces bit-identical results concurrently.
func NewEngineWithOptions(t Topology, kind SwitchKind, seed int64, opts Options) *Engine {
	return sim.NewWithOptions(t, kind, seed, opts)
}

// RunOnline delivers ms with the greedy online retry protocol.
func RunOnline(e *Engine, ms MessageSet) Stats { return sim.RunOnline(e, ms) }

// RunOnlineRandom delivers ms with the randomized on-line protocol of
// Greenberg and Leiserson (the paper's reference [8]): fresh random
// contention priorities every cycle, measured against the
// O(λ + lg n·lg lg n) envelope.
func RunOnlineRandom(e *Engine, ms MessageSet, seed int64) Stats {
	return sim.RunOnlineRandom(e, ms, seed)
}

// OnlineBound returns the randomized on-line envelope c·(λ + lg n·lg lg n).
func OnlineBound(t Topology, lambda, c float64) float64 { return sim.OnlineBound(t, lambda, c) }

// BufferedStats summarizes a buffered (backpressure) delivery run.
type BufferedStats = sim.BufferedStats

// RunBuffered delivers ms with per-channel FIFO queues of the given depth
// and backpressure instead of drop-and-retry — the modern switch discipline
// Section VII's "different design decisions" remark anticipates.
func RunBuffered(t *FatTree, ms MessageSet, queueDepth int) BufferedStats {
	return sim.RunBuffered(t, ms, queueDepth)
}

// Observability.
type (
	// Observer is the zero-overhead-when-disabled observability layer:
	// per-channel/per-switch counters and an optional ring-buffer event trace,
	// recorded at the engine's deterministic serial merge points. Attach with
	// Options.Observer or Engine.SetObserver.
	Observer = obsv.Observer
	// ObsvCounters is an observer's flat counter block.
	ObsvCounters = obsv.Counters
	// TraceRing is the fixed-capacity event ring buffer of an observer.
	TraceRing = obsv.Ring
	// TraceEvent is one traced simulator event.
	TraceEvent = obsv.Event
	// ObsvSnapshot is an immutable deep copy of an observer's counters and
	// histograms, safe to take from any goroutine while a run is in flight;
	// diff two with Sub, render with WriteHistSummary.
	ObsvSnapshot = obsv.Snapshot
	// ObsvHistSnap is an immutable copy of one telemetry histogram.
	ObsvHistSnap = obsv.HistSnap
	// PromLabel is one label pair of a Prometheus exposition sample.
	PromLabel = obsv.PromLabel
	// LabeledSnapshot pairs an observer snapshot with the label set
	// identifying its source in a Prometheus exposition.
	LabeledSnapshot = obsv.LabeledSnapshot
)

// WritePrometheus writes the snapshots as Prometheus text exposition
// (fattree_* metric families, one HELP/TYPE header per family).
func WritePrometheus(w io.Writer, snaps ...LabeledSnapshot) error {
	return obsv.WritePrometheus(w, snaps...)
}

// ValidatePromExposition strictly parses text as Prometheus text exposition,
// returning the first syntax or histogram-consistency violation.
func ValidatePromExposition(text []byte) error { return obsv.ValidateExposition(text) }

// NewObserver builds an observer bound to t; every counter array is
// preallocated so recording never allocates.
func NewObserver(t Topology) *Observer { return obsv.New(t) }

// NewObserverCompact builds a per-level observer in O(levels) memory — the
// observer for implicit-topology engines, whose per-level reports match a
// dense observer's exactly.
func NewObserverCompact(t Topology) *Observer { return obsv.NewCompact(t) }

// ObserversEqual reports whether two observers hold identical counter totals
// — the parallel == serial equivalence assertion.
func ObserversEqual(a, b *Observer) bool { return obsv.CountersEqual(a, b) }

// Request-path observability (the serving daemon's half of the telemetry
// layer: spans around each request, RED instruments per tenant).
type (
	// Span is one recorded stage of one served request (handler, queue
	// wait, engine delivery, response), stamped with the request's trace ID.
	Span = obsv.Span
	// SpanKind enumerates the stages of a served request.
	SpanKind = obsv.SpanKind
	// SpanRing is the fixed-capacity, concurrency-safe span flight recorder;
	// pushes never allocate, oldest spans are overwritten when full.
	SpanRing = obsv.SpanRing
	// RED is one tenant's rate/errors/duration instrument block; its
	// deterministic members are bit-identical across worker counts.
	RED = obsv.RED
	// REDSnap is a point-in-time copy of one RED block.
	REDSnap = obsv.REDSnap
	// LabeledRED pairs a RED snapshot with its tenant's label set.
	LabeledRED = obsv.LabeledRED
	// PromSample is one parsed sample of a Prometheus exposition.
	PromSample = obsv.Sample
)

// The span stages, in request order.
const (
	SpanHandler = obsv.SpanHandler
	SpanQueue   = obsv.SpanQueue
	SpanEngine  = obsv.SpanEngine
	SpanRespond = obsv.SpanRespond
)

// NewSpanRing returns a span ring holding at most capacity spans.
func NewSpanRing(capacity int) *SpanRing { return obsv.NewSpanRing(capacity) }

// NewRED returns a fresh per-tenant RED instrument block.
func NewRED() *RED { return obsv.NewRED() }

// REDEqual reports whether two RED blocks agree on their deterministic
// members (request/error counts, duration-in-cycles histogram).
func REDEqual(a, b *RED) bool { return obsv.REDEqual(a, b) }

// TraceID formats a trace ID as it appears in responses, exemplars, and span
// exports: 16 lowercase hex digits.
func TraceID(trace uint64) string { return obsv.TraceID(trace) }

// WriteREDPrometheus writes the per-tenant request families (RED counters,
// duration histograms with exemplar trace IDs, queue depth/wait) as
// Prometheus text exposition.
func WriteREDPrometheus(w io.Writer, tenants ...LabeledRED) error {
	return obsv.WriteREDPrometheus(w, tenants...)
}

// ParsePromExposition parses and validates a Prometheus exposition with
// ValidatePromExposition's strictness and returns every sample — the
// scrape-consuming half of the telemetry loop (cmd/ftload asserts the
// conservation law from a live scrape with it).
func ParsePromExposition(text []byte) ([]PromSample, error) {
	return obsv.ParseExposition(text)
}

// StartProfiles starts the comma-separated profile kinds ("cpu", "mem",
// "trace") writing to files derived from base, returning the stop function —
// the CLIs' -profile flag family.
func StartProfiles(spec, base string) (func() error, error) {
	return obsv.StartProfiles(spec, base)
}

// ScheduleOfflineObserved is ScheduleOffline with per-level scheduler
// counters recorded into o; the schedule is identical.
func ScheduleOfflineObserved(t Topology, ms MessageSet, o *Observer) *Schedule {
	return sched.OffLineObserved(t, ms, o)
}

// RunBufferedObserved is RunBuffered with per-channel stall and queue-depth
// counters recorded into o; the stats are identical.
func RunBufferedObserved(t *FatTree, ms MessageSet, queueDepth int, o *Observer) BufferedStats {
	return sim.RunBufferedObserved(t, ms, queueDepth, o)
}

// Open-loop (sustained) operation.
type (
	// OpenLoopStats summarizes a sustained delivery run.
	OpenLoopStats = sim.OpenLoopStats
	// ArrivalFunc produces the messages arriving at the start of a cycle.
	ArrivalFunc = sim.ArrivalFunc
)

// UniformArrivals offers perCycle uniformly random messages every cycle.
func UniformArrivals(t Topology, perCycle int, seed int64) ArrivalFunc {
	return sim.UniformArrivals(t, perCycle, seed)
}

// RunOpenLoop drives the engine continuously under an arrival process and
// reports throughput, latency and backlog growth (the saturation knee).
func RunOpenLoop(e *Engine, arrivals ArrivalFunc, cycles int, seed int64) OpenLoopStats {
	return sim.RunOpenLoop(e, arrivals, cycles, seed)
}

// ScheduleOfflineCompact runs the Theorem 1 scheduler and then packs cycles
// across levels greedily: same worst-case bound, fewer cycles in practice.
func ScheduleOfflineCompact(t Topology, ms MessageSet) *Schedule {
	return sched.OffLineCompact(t, ms)
}

// CompactSchedule packs an existing schedule's cycles (never more cycles,
// always still valid).
func CompactSchedule(s *Schedule) *Schedule { return sched.Compact(s) }

// ReadSchedule deserializes a JSON schedule (written with Schedule.WriteTo)
// and binds it to t, verifying the machine matches.
func ReadSchedule(r io.Reader, t Topology) (*Schedule, error) { return sched.ReadSchedule(r, t) }

// ScheduleOfflineParallel is OffLine with per-subtree partitioning spread
// over the shared worker pool (GOMAXPROCS goroutines); the resulting
// schedule is identical.
func ScheduleOfflineParallel(t Topology, ms MessageSet) *Schedule {
	return sched.OffLineParallel(t, ms)
}

// ScheduleOfflineParallelWorkers is ScheduleOfflineParallel with an explicit
// worker bound (<= 0 means GOMAXPROCS); the schedule is identical for every
// bound.
func ScheduleOfflineParallelWorkers(t Topology, ms MessageSet, workers int) *Schedule {
	return sched.OffLineParallelWorkers(t, ms, workers)
}

// RunSchedule plays an off-line schedule through the engine.
func RunSchedule(e *Engine, s *Schedule) Stats { return sim.RunSchedule(e, s) }

// DeliverOffline schedules ms with Theorem 1 and plays it on ideal switches:
// zero drops, exactly len(schedule) cycles.
func DeliverOffline(t Topology, ms MessageSet) (Stats, *Schedule) {
	return sim.DeliverOffline(t, ms)
}

// MessageTicks, CycleTicks, ScheduleTicks and MaxCycleTicks model the
// bit-serial clock (Fig. 2): O(lg n + payload) ticks per delivery cycle.
func MessageTicks(t Topology, m Message, payloadBits int) int {
	return sim.MessageTicks(t, m, payloadBits)
}

// CycleTicks returns the tick duration of one delivery cycle carrying ms.
func CycleTicks(t Topology, ms MessageSet, payloadBits int) int {
	return sim.CycleTicks(t, ms, payloadBits)
}

// ScheduleTicks totals the ticks of a sequence of delivery cycles.
func ScheduleTicks(t Topology, cycles []MessageSet, payloadBits int) int {
	return sim.ScheduleTicks(t, cycles, payloadBits)
}

// MaxCycleTicks returns the worst-case delivery-cycle duration.
func MaxCycleTicks(t Topology, payloadBits int) int { return sim.MaxCycleTicks(t, payloadBits) }

// PipelinedScheduleTicks models back-to-back delivery cycles with pipelined
// frames: consecutive cycles separated by the frame length rather than the
// full path traversal.
func PipelinedScheduleTicks(t Topology, cycles []MessageSet, payloadBits int) int {
	return sim.PipelinedScheduleTicks(t, cycles, payloadBits)
}
