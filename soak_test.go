package fattree_test

import (
	"reflect"
	"runtime"
	"testing"

	"fattree"
)

// Soak tests exercise the library at supercomputer-ish scales; skipped under
// -short so the ordinary suite stays fast.

func TestSoakLargeSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	n := 8192
	ft := fattree.NewUniversal(n, 1024)
	ms := fattree.Random(n, 4*n, 1)
	s := fattree.ScheduleOfflineParallel(ft, ms)
	if err := s.Verify(ms); err != nil {
		t.Fatalf("%v", err)
	}
	packed := fattree.CompactSchedule(s)
	if err := packed.Verify(ms); err != nil {
		t.Fatalf("compacted: %v", err)
	}
	lam := fattree.LoadFactor(ft, ms)
	if float64(packed.Length()) < lam {
		t.Fatalf("impossible: d < λ")
	}
	t.Logf("n=%d: λ=%.1f, d=%d, compacted=%d, utilization=%.2f",
		n, lam, s.Length(), packed.Length(), packed.Utilization())
}

func TestSoakLargeHardwarePlayback(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	n := 2048
	ft := fattree.NewUniversal(n, 256)
	ms := fattree.Concat(
		fattree.RandomPermutation(n, 2),
		fattree.ExternalIO(n, n/4, n/4, 3),
	)
	s := fattree.ScheduleOffline(ft, ms)
	stats := fattree.RunSchedule(fattree.NewEngine(ft, fattree.SwitchIdeal, 0), s)
	if stats.Drops != 0 || stats.Delivered != len(ms) {
		t.Fatalf("large playback failed: %+v", stats)
	}
}

func TestSoakLargeUniversality(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	n := 1024
	r := fattree.SimulateOnFatTree(fattree.NewHypercube(n), fattree.RandomPermutation(n, 5), 1)
	if r.Slowdown > 4*r.PolylogBound {
		t.Fatalf("slowdown %.1f outside envelope %.1f at n=%d", r.Slowdown, r.PolylogBound, n)
	}
	t.Logf("n=%d: slowdown %.1f, envelope %.1f, normalized %.3f",
		n, r.Slowdown, r.PolylogBound, r.Slowdown/r.PolylogBound)
}

// TestSoakImplicitHugeBoundedMemory is the bounded-memory soak of ISSUE 8 and
// the CI memory-guard: a 2^20-endpoint implicit fat-tree simulated to
// completion in bounded time, with three pinned properties. First, the
// retained heap for the topology plus a warmed streaming engine stays under a
// hard bytes/endpoint ceiling (the measured figure is ~62 B/endpoint, see
// EXPERIMENTS.md §A6; the ceiling leaves room for allocator jitter, not for a
// per-node table — any O(n) state blows through it immediately). Second, the
// sharded-parallel run is bit-identical to the serial one. Third, the
// conservation law exported at /metrics holds on the compact observer's
// counters: every offered message is delivered, dropped, or deferred.
func TestSoakImplicitHugeBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		n       = 1 << 20
		ceiling = 128.0 // bytes/endpoint, ~2x the measured steady state
	)
	ms := fattree.Random(n, n/64, 3)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	ft := fattree.NewImplicitUniversal(n, n/4)
	serial := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0, fattree.Options{Workers: 1})
	serial.RunCycle(ms) // warm the scratch arena to its high-water mark
	runtime.GC()
	runtime.ReadMemStats(&after)
	perEndpoint := (float64(after.HeapAlloc) - float64(before.HeapAlloc)) / float64(n)
	if perEndpoint > ceiling {
		t.Fatalf("implicit engine retains %.1f bytes/endpoint at n=2^20, ceiling %.0f", perEndpoint, ceiling)
	}
	t.Logf("n=2^20: %.1f bytes/endpoint retained (ceiling %.0f)", perEndpoint, ceiling)

	// Random sets contend (ideal switches resolve arbitration by dropping,
	// and Run retries), so full delivery — not zero drops — is the invariant.
	ref := serial.Run(ms)
	if ref.Delivered != len(ms) {
		t.Fatalf("serial huge run incomplete: %+v", ref)
	}
	for _, workers := range []int{2, 0} {
		o := fattree.NewObserverCompact(ft)
		e := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0,
			fattree.Options{Workers: workers, Observer: o})
		stats := e.RunParallel(ms)
		if !reflect.DeepEqual(stats, ref) {
			t.Fatalf("workers=%d: sharded run diverges from serial\nserial   %+v\nparallel %+v",
				workers, ref, stats)
		}
		c := &o.C
		if c.Offered != c.Delivered+c.Dropped+c.Deferred {
			t.Fatalf("workers=%d: conservation broken: offered %d != delivered %d + dropped %d + deferred %d",
				workers, c.Offered, c.Delivered, c.Dropped, c.Deferred)
		}
		if int(c.Delivered) != len(ms) {
			t.Fatalf("workers=%d: observer counted %d deliveries, want %d", workers, c.Delivered, len(ms))
		}
	}
}

func TestSoakBufferedBigTree(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	n := 1024
	ft := fattree.NewUniversal(n, 256)
	ms := fattree.Random(n, 8*n, 7)
	stats := fattree.RunBuffered(ft, ms, 8)
	if stats.Delivered != len(ms) {
		t.Fatalf("buffered soak incomplete: %+v", stats)
	}
}
