package fattree_test

import (
	"testing"

	"fattree"
)

// Soak tests exercise the library at supercomputer-ish scales; skipped under
// -short so the ordinary suite stays fast.

func TestSoakLargeSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	n := 8192
	ft := fattree.NewUniversal(n, 1024)
	ms := fattree.Random(n, 4*n, 1)
	s := fattree.ScheduleOfflineParallel(ft, ms)
	if err := s.Verify(ms); err != nil {
		t.Fatalf("%v", err)
	}
	packed := fattree.CompactSchedule(s)
	if err := packed.Verify(ms); err != nil {
		t.Fatalf("compacted: %v", err)
	}
	lam := fattree.LoadFactor(ft, ms)
	if float64(packed.Length()) < lam {
		t.Fatalf("impossible: d < λ")
	}
	t.Logf("n=%d: λ=%.1f, d=%d, compacted=%d, utilization=%.2f",
		n, lam, s.Length(), packed.Length(), packed.Utilization())
}

func TestSoakLargeHardwarePlayback(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	n := 2048
	ft := fattree.NewUniversal(n, 256)
	ms := fattree.Concat(
		fattree.RandomPermutation(n, 2),
		fattree.ExternalIO(n, n/4, n/4, 3),
	)
	s := fattree.ScheduleOffline(ft, ms)
	stats := fattree.RunSchedule(fattree.NewEngine(ft, fattree.SwitchIdeal, 0), s)
	if stats.Drops != 0 || stats.Delivered != len(ms) {
		t.Fatalf("large playback failed: %+v", stats)
	}
}

func TestSoakLargeUniversality(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	n := 1024
	r := fattree.SimulateOnFatTree(fattree.NewHypercube(n), fattree.RandomPermutation(n, 5), 1)
	if r.Slowdown > 4*r.PolylogBound {
		t.Fatalf("slowdown %.1f outside envelope %.1f at n=%d", r.Slowdown, r.PolylogBound, n)
	}
	t.Logf("n=%d: slowdown %.1f, envelope %.1f, normalized %.3f",
		n, r.Slowdown, r.PolylogBound, r.Slowdown/r.PolylogBound)
}

func TestSoakBufferedBigTree(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	n := 1024
	ft := fattree.NewUniversal(n, 256)
	ms := fattree.Random(n, 8*n, 7)
	stats := fattree.RunBuffered(ft, ms, 8)
	if stats.Delivered != len(ms) {
		t.Fatalf("buffered soak incomplete: %+v", stats)
	}
}
