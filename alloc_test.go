package fattree_test

import (
	"testing"

	"fattree"
)

// TestRouteCycleSerialZeroAllocs is the runtime half of the observability
// cost contract (the hotalloc ftlint analyzer is the static half): with the
// observer disabled, a warmed engine's delivery cycle performs zero heap
// allocations at every standard size. The CI bench-guard job additionally
// asserts the same figure out of BenchmarkRouteCycleSerial's -benchmem
// output.
func TestRouteCycleSerialZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard is covered at full size in CI")
	}
	for _, n := range []int{256, 1024, 4096} {
		ft := fattree.NewUniversal(n, n/4)
		ms := fattree.RandomPermutation(n, 1)
		e := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0, fattree.Options{Workers: 1})
		e.RunCycle(ms) // warm the scratch arena
		allocs := testing.AllocsPerRun(10, func() {
			if _, res := e.RunCycle(ms); res.Delivered == 0 {
				t.Fatal("cycle delivered nothing")
			}
		})
		if allocs != 0 {
			t.Errorf("n=%d: %v allocs/op with observers disabled, want 0", n, allocs)
		}
	}
}

// TestRouteCycleImplicitZeroAllocs extends the contract to the streaming
// engine: on an implicit topology, a warmed delivery cycle performs zero heap
// allocations even at sizes where the materialized engine could not be built.
// The CI bench-guard job additionally asserts the same figure out of
// BenchmarkRouteCycleImplicit's -benchmem output.
func TestRouteCycleImplicitZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard is covered at full size in CI")
	}
	for _, n := range []int{1 << 16, 1 << 18} {
		ft := fattree.NewImplicitUniversal(n, n/4)
		ms := fattree.Random(n, n/64, 1)
		e := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0, fattree.Options{Workers: 1})
		e.RunCycle(ms) // warm the scratch arena
		allocs := testing.AllocsPerRun(10, func() {
			if _, res := e.RunCycle(ms); res.Delivered == 0 {
				t.Fatal("cycle delivered nothing")
			}
		})
		if allocs != 0 {
			t.Errorf("n=%d: %v allocs/op on the streaming engine, want 0", n, allocs)
		}
	}
}

// TestOffLineScheduleAllocs pins the scheduler half of the allocation
// contract: a warmed reusable Scheduler runs the full Theorem 1 pipeline —
// λ computation, LCA grouping, repeated even-bisection, one-cycle assembly —
// at zero steady-state heap allocations, both unobserved and with the
// per-level counters attached, at every standard size. The CI bench-guard job
// additionally asserts the same figure out of BenchmarkOffLineSchedule's
// -benchmem output, and ftbenchdiff -strict pins the ns/op.
func TestOffLineScheduleAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard is covered at full size in CI")
	}
	for _, n := range []int{256, 1024, 4096} {
		ft := fattree.NewUniversal(n, n/4)
		ms := fattree.Random(n, 4*n, 1)
		sc := fattree.NewScheduler(ft)
		sc.OffLine(ms) // warm the scratch arena
		allocs := testing.AllocsPerRun(10, func() {
			if s := sc.OffLine(ms); s.Length() == 0 {
				t.Fatal("empty schedule")
			}
		})
		if allocs != 0 {
			t.Errorf("n=%d: %v allocs/op unobserved, want 0", n, allocs)
		}
		// Observed path: counters are flat-array adds at the serial merge
		// points, so attaching an observer must not reintroduce allocation.
		o := fattree.NewObserver(ft)
		sc.OffLineObserved(ms, o) // warm the observed path
		allocs = testing.AllocsPerRun(10, func() {
			if s := sc.OffLineObserved(ms, o); s.Length() == 0 {
				t.Fatal("empty schedule")
			}
		})
		if allocs != 0 {
			t.Errorf("n=%d: %v allocs/op observed, want 0", n, allocs)
		}
	}
}

// TestOffLineCompactAllocs extends the guard to the production entry point:
// scheduling plus greedy compaction on a warmed scheduler stays at zero.
func TestOffLineCompactAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard is covered at full size in CI")
	}
	n := 1024
	ft := fattree.NewUniversal(n, n/4)
	ms := fattree.Random(n, 4*n, 1)
	sc := fattree.NewScheduler(ft)
	sc.OffLineCompact(ms) // warm both arenas
	allocs := testing.AllocsPerRun(10, func() {
		if s := sc.OffLineCompact(ms); s.Length() == 0 {
			t.Fatal("empty schedule")
		}
	})
	if allocs != 0 {
		t.Errorf("%v allocs/op for OffLineCompact, want 0", allocs)
	}
}

// TestRouteCycleObservedSteadyStateAllocs pins the "cheap when enabled" half:
// counters are flat-array adds and trace events are fixed-slot ring writes,
// so even an observed steady-state cycle allocates nothing once the ring has
// been created.
func TestRouteCycleObservedSteadyStateAllocs(t *testing.T) {
	n := 256
	ft := fattree.NewUniversal(n, n/4)
	ms := fattree.RandomPermutation(n, 1)
	o := fattree.NewObserver(ft)
	o.EnableTrace(1 << 12)
	e := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0,
		fattree.Options{Workers: 1, Observer: o})
	e.RunCycle(ms) // warm the arena and fill the ring to steady state
	allocs := testing.AllocsPerRun(10, func() {
		if _, res := e.RunCycle(ms); res.Delivered == 0 {
			t.Fatal("cycle delivered nothing")
		}
	})
	if allocs != 0 {
		t.Errorf("%v allocs/op with observers enabled, want 0 (ring writes must not allocate)", allocs)
	}
}
