package fattree_test

import (
	"testing"

	"fattree"
)

// TestRouteCycleSerialZeroAllocs is the runtime half of the observability
// cost contract (the hotalloc ftlint analyzer is the static half): with the
// observer disabled, a warmed engine's delivery cycle performs zero heap
// allocations at every standard size. The CI bench-guard job additionally
// asserts the same figure out of BenchmarkRouteCycleSerial's -benchmem
// output.
func TestRouteCycleSerialZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard is covered at full size in CI")
	}
	for _, n := range []int{256, 1024, 4096} {
		ft := fattree.NewUniversal(n, n/4)
		ms := fattree.RandomPermutation(n, 1)
		e := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0, fattree.Options{Workers: 1})
		e.RunCycle(ms) // warm the scratch arena
		allocs := testing.AllocsPerRun(10, func() {
			if _, res := e.RunCycle(ms); res.Delivered == 0 {
				t.Fatal("cycle delivered nothing")
			}
		})
		if allocs != 0 {
			t.Errorf("n=%d: %v allocs/op with observers disabled, want 0", n, allocs)
		}
	}
}

// TestRouteCycleObservedSteadyStateAllocs pins the "cheap when enabled" half:
// counters are flat-array adds and trace events are fixed-slot ring writes,
// so even an observed steady-state cycle allocates nothing once the ring has
// been created.
func TestRouteCycleObservedSteadyStateAllocs(t *testing.T) {
	n := 256
	ft := fattree.NewUniversal(n, n/4)
	ms := fattree.RandomPermutation(n, 1)
	o := fattree.NewObserver(ft)
	o.EnableTrace(1 << 12)
	e := fattree.NewEngineWithOptions(ft, fattree.SwitchIdeal, 0,
		fattree.Options{Workers: 1, Observer: o})
	e.RunCycle(ms) // warm the arena and fill the ring to steady state
	allocs := testing.AllocsPerRun(10, func() {
		if _, res := e.RunCycle(ms); res.Delivered == 0 {
			t.Fatal("cycle delivered nothing")
		}
	})
	if allocs != 0 {
		t.Errorf("%v allocs/op with observers enabled, want 0 (ring writes must not allocate)", allocs)
	}
}
