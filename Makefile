# Developer entry points. The repository is stdlib-only; `lint` needs nothing
# beyond the go toolchain (ftlint lives in this module). staticcheck and
# govulncheck are optional extras: `make lint-extra` runs whichever of them is
# installed and skips the rest, while CI installs pinned versions and runs
# both unconditionally (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race lint lint-extra fuzz bench-json bench-diff serve trace-demo check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Repository-specific analyzers (determinism, seed plumbing, float compares,
# pool captures, error discards). Equivalent invocation via the go command:
#   go build -o "$$(go env GOPATH)/bin/ftlint" ./cmd/ftlint
#   go vet -vettool=$$(which ftlint) ./...
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/ftlint ./...

# Third-party linters, gated on local availability (no network required).
lint-extra:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo staticcheck ./...; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo govulncheck ./...; govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it pinned)"; \
	fi

# Delivery-engine micro-benchmarks (EXPERIMENTS.md §A4/§A6) as
# machine-readable JSON: ns/op, B/op, allocs/op for
# RouteCycle{Serial,Parallel} and OffLineSchedule at n = 256, 1024, 4096, the
# implicit-topology streaming rows RouteCycleImplicit{,Par} at n = 2^16, 2^18,
# 2^20 with bytes/endpoint, plus run metadata (go version, GOOS/GOARCH, CPU
# count, timestamp) so snapshots are comparable across machines and PRs.
bench-json:
	$(GO) run ./cmd/ftbench -bench -json > BENCH_8.json

# Compare a fresh benchmark run against the committed baseline and flag
# ns/op regressions above 10% (and any allocs/op increase). Advisory: the
# report always exits 0; CI additionally holds the OffLineSchedule and
# RouteCycle/Implicit families to -strict (they are allocation-free, so the
# allocs/op half is noise-immune, and the ns/op half gets a wide band). Use
# `go run ./cmd/ftbenchdiff -strict old.json new.json` to fail on any
# regression.
bench-diff:
	$(GO) run ./cmd/ftbench -bench -json > /tmp/bench-current.json
	$(GO) run ./cmd/ftbenchdiff BENCH_8.json /tmp/bench-current.json

# Run the live-telemetry daemon locally: Prometheus metrics at
# http://127.0.0.1:8080/metrics while simulations rotate underneath.
serve:
	$(GO) run ./cmd/ftserve -addr 127.0.0.1:8080

# Sample observability artifact: a chrome://tracing-loadable trace of one
# online permutation run plus the per-level counter report (DESIGN.md §8).
# Load trace-demo.json via chrome://tracing or https://ui.perfetto.dev.
trace-demo:
	$(GO) run ./cmd/ftsim -n 256 -workload perm -policy online \
		-counters -trace-out trace-demo.json

# Short fuzz shakeout of the two cross-check targets (serial vs parallel).
fuzz:
	$(GO) test ./internal/sched/ -fuzz FuzzSchedule -fuzztime 10s
	$(GO) test ./internal/sim/ -fuzz FuzzEngineParallelEquivalence -fuzztime 10s

check: build lint test
