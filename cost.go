package fattree

import "fattree/internal/vlsi"

// This file re-exports the three-dimensional VLSI cost model of Section IV.

// Box is a rectangular box in unit cells of the 3-D VLSI model.
type Box = vlsi.Box

// NodeBox returns the Lemma 3 box housing a node with m incident wires:
// volume O(m^(3/2)) with aspect parameter h in [1, sqrt m].
func NodeBox(m int, h float64) Box { return vlsi.NodeBox(m, h) }

// UniversalComponents counts the switching components of a universal fat-tree
// (proportional to incident wires per node).
func UniversalComponents(n, w int) int { return vlsi.UniversalComponents(n, w) }

// ComponentsBound is Theorem 4's Θ(n·lg(w³/n²)) component figure.
func ComponentsBound(n, w int) float64 { return vlsi.ComponentsBound(n, w) }

// UniversalVolume is Theorem 4's Θ((w·lg(n/w))^(3/2)) volume figure.
func UniversalVolume(n, w int) float64 { return vlsi.UniversalVolume(n, w) }

// RootCapacityForVolume inverts UniversalVolume: the root capacity
// Θ(v^(2/3)/lg(n/v^(2/3))) of the universal fat-tree of volume v.
func RootCapacityForVolume(n int, v float64) int { return vlsi.RootCapacityForVolume(n, v) }

// NewUniversalOfVolume builds the universal fat-tree of volume v on n
// processors.
func NewUniversalOfVolume(n int, v float64) *FatTree { return vlsi.NewUniversalOfVolume(n, v) }

// HypercubeVolume is the Θ(n^(3/2)) hypercube volume.
func HypercubeVolume(n int) float64 { return vlsi.HypercubeVolume(n) }

// MeshVolume is the Θ(n) two-dimensional mesh volume.
func MeshVolume(n int) float64 { return vlsi.MeshVolume(n) }

// TreeVolume is the Θ(n) plain binary tree volume.
func TreeVolume(n int) float64 { return vlsi.TreeVolume(n) }

// ButterflyVolume is the butterfly's max(n·lg n, (n/lg n)^(3/2)) volume.
func ButterflyVolume(n int) float64 { return vlsi.ButterflyVolume(n) }

// VolumeLowerBoundFromBisection is the generic 3-D bound
// max(n, bisection^(3/2)).
func VolumeLowerBoundFromBisection(n, b int) float64 {
	return vlsi.VolumeLowerBoundFromBisection(n, b)
}

// UniversalArea is the 2-D Thompson-model Θ((w·lg(n/w))²) area of an
// area-universal fat-tree.
func UniversalArea(n, w int) float64 { return vlsi.UniversalArea(n, w) }

// RootCapacityForArea inverts UniversalArea: the root capacity of the
// area-universal fat-tree of area A.
func RootCapacityForArea(n int, area float64) int { return vlsi.RootCapacityForArea(n, area) }

// NewUniversal2DOfArea builds the area-universal fat-tree of area A.
func NewUniversal2DOfArea(n int, area float64) *FatTree { return vlsi.NewUniversal2DOfArea(n, area) }

// MeshArea is the Θ(n) area of the planar mesh.
func MeshArea(n int) float64 { return vlsi.MeshArea(n) }
